//! Record-granularity lock manager.
//!
//! Supports shared/exclusive modes, lock upgrades, and the two
//! deadlock-handling policies used in the paper: NO_WAIT (abort on any
//! conflict) and WAIT_DIE (an older transaction may wait for a younger
//! holder; a younger requester dies immediately). Primo's WCF uses
//! exclusive-only locking with WAIT_DIE (§4.2.2).

use parking_lot::{Condvar, Mutex};
use primo_common::TxnId;
use std::time::Duration;

/// Requested/held lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Deadlock-handling policy for lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Abort the requester on any conflict.
    NoWait,
    /// Older requester waits, younger requester aborts ("dies").
    WaitDie,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRequestResult {
    Granted,
    /// The requester must abort (conflict under NO_WAIT, or it was younger
    /// under WAIT_DIE, or waiting timed out).
    Abort,
}

/// Upper bound on how long a WAIT_DIE waiter blocks before giving up. WAIT_DIE
/// guarantees no deadlock, so this only fires if a holder crashed without
/// releasing; treating it as an abort keeps the experiment progressing.
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

#[derive(Debug, Default)]
struct LockState {
    /// Transactions currently holding the lock. Multiple entries only in
    /// shared mode.
    holders: Vec<TxnId>,
    exclusive: bool,
    /// Number of threads currently blocked waiting on this lock.
    waiters: usize,
}

impl LockState {
    fn held(&self) -> bool {
        !self.holders.is_empty()
    }

    fn held_by(&self, txn: TxnId) -> bool {
        self.holders.contains(&txn)
    }

    fn sole_holder(&self, txn: TxnId) -> bool {
        self.holders.len() == 1 && self.holders[0] == txn
    }

    /// True if `txn` is older (higher priority) than every current holder.
    fn older_than_all_holders(&self, txn: TxnId) -> bool {
        self.holders.iter().all(|h| txn < *h)
    }
}

/// A per-record lock with shared/exclusive modes and policy-driven conflict
/// resolution.
#[derive(Debug, Default)]
pub struct RecordLock {
    state: Mutex<LockState>,
    cond: Condvar,
}

impl RecordLock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire the lock in `mode` for `txn`, resolving conflicts with
    /// `policy`. Re-entrant: if `txn` already holds a compatible (or stronger)
    /// lock the request is granted immediately; a shared holder requesting
    /// exclusive is treated as an upgrade.
    pub fn acquire(&self, txn: TxnId, mode: LockMode, policy: LockPolicy) -> LockRequestResult {
        let mut st = self.state.lock();
        loop {
            // Re-entrant / upgrade handling.
            if st.held_by(txn) {
                match mode {
                    LockMode::Shared => return LockRequestResult::Granted,
                    LockMode::Exclusive => {
                        if st.exclusive {
                            return LockRequestResult::Granted;
                        }
                        if st.sole_holder(txn) {
                            st.exclusive = true;
                            return LockRequestResult::Granted;
                        }
                        // Upgrade blocked by other shared holders.
                    }
                }
            } else if !st.held() {
                st.holders.push(txn);
                st.exclusive = mode == LockMode::Exclusive;
                return LockRequestResult::Granted;
            } else if mode == LockMode::Shared && !st.exclusive {
                st.holders.push(txn);
                return LockRequestResult::Granted;
            }

            // Conflict.
            match policy {
                LockPolicy::NoWait => return LockRequestResult::Abort,
                LockPolicy::WaitDie => {
                    if !st.older_than_all_holders(txn) {
                        return LockRequestResult::Abort;
                    }
                    st.waiters += 1;
                    let timed_out = self.cond.wait_for(&mut st, WAIT_TIMEOUT).timed_out();
                    st.waiters -= 1;
                    if timed_out {
                        return LockRequestResult::Abort;
                    }
                    // Loop and re-check.
                }
            }
        }
    }

    /// Release any lock held by `txn`. Releasing a lock that is not held is a
    /// no-op (protocol abort paths may release conservatively).
    pub fn release(&self, txn: TxnId) {
        let mut st = self.state.lock();
        let before = st.holders.len();
        st.holders.retain(|h| *h != txn);
        if st.holders.is_empty() {
            st.exclusive = false;
        }
        let released = st.holders.len() != before;
        let has_waiters = st.waiters > 0;
        drop(st);
        if released && has_waiters {
            self.cond.notify_all();
        }
    }

    /// True if the lock is currently held in exclusive mode by a transaction
    /// other than `txn`. Used by TicToc validation: extending the `rts` of a
    /// record that someone else has write-locked must abort.
    pub fn exclusively_locked_by_other(&self, txn: TxnId) -> bool {
        let st = self.state.lock();
        st.exclusive && !st.held_by(txn)
    }

    /// True if `txn` currently holds this lock (in any mode).
    pub fn held_by(&self, txn: TxnId) -> bool {
        self.state.lock().held_by(txn)
    }

    /// A current holder of the lock — the only one under exclusive mode, an
    /// arbitrary one under shared. Conflict diagnostics only (the answer can
    /// be stale by the time the caller looks at it): the flight recorder
    /// stamps lock-wait events with the transaction that was in the way.
    pub fn holder(&self) -> Option<TxnId> {
        self.state.lock().holders.first().copied()
    }

    /// True if anyone holds the lock.
    pub fn is_locked(&self) -> bool {
        self.state.lock().held()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::PartitionId;
    use std::sync::Arc;

    fn t(seq: u64) -> TxnId {
        TxnId::new(PartitionId(0), seq)
    }

    #[test]
    fn exclusive_excludes() {
        let l = RecordLock::new();
        assert_eq!(
            l.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        assert_eq!(
            l.acquire(t(2), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
        assert_eq!(
            l.acquire(t(2), LockMode::Shared, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
        l.release(t(1));
        assert_eq!(
            l.acquire(t(2), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
    }

    #[test]
    fn shared_locks_coexist() {
        let l = RecordLock::new();
        assert_eq!(
            l.acquire(t(1), LockMode::Shared, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        assert_eq!(
            l.acquire(t(2), LockMode::Shared, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        // Exclusive blocked while two sharers exist.
        assert_eq!(
            l.acquire(t(3), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
    }

    #[test]
    fn reentrant_and_upgrade() {
        let l = RecordLock::new();
        assert_eq!(
            l.acquire(t(1), LockMode::Shared, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        // Re-entrant shared.
        assert_eq!(
            l.acquire(t(1), LockMode::Shared, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        // Upgrade succeeds as the sole holder.
        assert_eq!(
            l.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Granted
        );
        assert!(l.exclusively_locked_by_other(t(2)));
        assert!(!l.exclusively_locked_by_other(t(1)));
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let l = RecordLock::new();
        l.acquire(t(1), LockMode::Shared, LockPolicy::NoWait);
        l.acquire(t(2), LockMode::Shared, LockPolicy::NoWait);
        assert_eq!(
            l.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait),
            LockRequestResult::Abort
        );
    }

    #[test]
    fn wait_die_younger_dies_older_waits() {
        let l = Arc::new(RecordLock::new());
        assert_eq!(
            l.acquire(t(5), LockMode::Exclusive, LockPolicy::WaitDie),
            LockRequestResult::Granted
        );
        // Younger (larger seq) dies immediately.
        assert_eq!(
            l.acquire(t(9), LockMode::Exclusive, LockPolicy::WaitDie),
            LockRequestResult::Abort
        );
        // Older (smaller seq) waits until release.
        let l2 = Arc::clone(&l);
        let waiter =
            std::thread::spawn(move || l2.acquire(t(1), LockMode::Exclusive, LockPolicy::WaitDie));
        std::thread::sleep(Duration::from_millis(10));
        l.release(t(5));
        assert_eq!(waiter.join().unwrap(), LockRequestResult::Granted);
    }

    #[test]
    fn wait_die_times_out_eventually() {
        let l = RecordLock::new();
        l.acquire(t(5), LockMode::Exclusive, LockPolicy::WaitDie);
        // Older waiter, but the holder never releases: the request must not
        // hang forever.
        let start = std::time::Instant::now();
        assert_eq!(
            l.acquire(t(1), LockMode::Exclusive, LockPolicy::WaitDie),
            LockRequestResult::Abort
        );
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn release_of_non_holder_is_noop() {
        let l = RecordLock::new();
        l.acquire(t(1), LockMode::Exclusive, LockPolicy::NoWait);
        l.release(t(2));
        assert!(l.held_by(t(1)));
        assert!(l.is_locked());
    }
}
