//! Per-partition store: the set of tables owned by one partition leader.

use crate::record::Record;
use crate::table::Table;
use parking_lot::RwLock;
use primo_common::{Key, PartitionId, TableId, Value};
use std::sync::Arc;

/// All data owned by one partition.
///
/// Tables are created lazily on first access so workloads can define their
/// schema simply by writing to table ids.
#[derive(Debug)]
pub struct PartitionStore {
    partition: PartitionId,
    tables: RwLock<Vec<Option<Arc<Table>>>>,
}

impl PartitionStore {
    pub fn new(partition: PartitionId) -> Self {
        PartitionStore {
            partition,
            tables: RwLock::new(Vec::new()),
        }
    }

    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Get (or lazily create) a table.
    pub fn table(&self, id: TableId) -> Arc<Table> {
        let idx = id.0 as usize;
        {
            let tables = self.tables.read();
            if let Some(Some(t)) = tables.get(idx) {
                return Arc::clone(t);
            }
        }
        let mut tables = self.tables.write();
        if tables.len() <= idx {
            tables.resize(idx + 1, None);
        }
        if tables[idx].is_none() {
            tables[idx] = Some(Arc::new(Table::new()));
        }
        Arc::clone(tables[idx].as_ref().unwrap())
    }

    /// Look up a record.
    pub fn get(&self, table: TableId, key: Key) -> Option<Arc<Record>> {
        self.table(table).get(key)
    }

    /// Insert (or overwrite) a record during loading or transaction install.
    pub fn insert(&self, table: TableId, key: Key, value: Value) -> Arc<Record> {
        self.table(table).insert(key, value)
    }

    /// Number of records across all tables.
    pub fn total_records(&self) -> usize {
        self.tables.read().iter().flatten().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_table_creation() {
        let s = PartitionStore::new(PartitionId(0));
        assert!(s.get(TableId(3), 1).is_none());
        s.insert(TableId(3), 1, Value::from_u64(9));
        assert_eq!(s.get(TableId(3), 1).unwrap().read().value.as_u64(), 9);
        assert_eq!(s.total_records(), 1);
        assert_eq!(s.partition(), PartitionId(0));
    }

    #[test]
    fn same_table_returns_same_instance() {
        let s = PartitionStore::new(PartitionId(1));
        let a = s.table(TableId(0));
        let b = s.table(TableId(0));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn tables_are_isolated() {
        let s = PartitionStore::new(PartitionId(0));
        s.insert(TableId(0), 5, Value::from_u64(1));
        s.insert(TableId(1), 5, Value::from_u64(2));
        assert_eq!(s.get(TableId(0), 5).unwrap().read().value.as_u64(), 1);
        assert_eq!(s.get(TableId(1), 5).unwrap().read().value.as_u64(), 2);
    }
}
