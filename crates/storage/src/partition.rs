//! Per-partition store: the set of tables owned by one partition leader.

use crate::record::Record;
use crate::table::Table;
use parking_lot::RwLock;
use primo_common::{Key, PartitionId, TableId, Value};
use std::sync::Arc;

/// All data owned by one partition.
///
/// Tables are created lazily on first access so workloads can define their
/// schema simply by writing to table ids.
#[derive(Debug)]
pub struct PartitionStore {
    partition: PartitionId,
    tables: RwLock<Vec<Option<Arc<Table>>>>,
    /// Version-chain depth for records in lazily created tables.
    max_versions: usize,
}

impl PartitionStore {
    pub fn new(partition: PartitionId) -> Self {
        Self::with_max_versions(partition, crate::record::DEFAULT_MAX_VERSIONS)
    }

    /// A store whose tables keep up to `max_versions` versions per record.
    pub fn with_max_versions(partition: PartitionId, max_versions: usize) -> Self {
        assert!(max_versions >= 1);
        PartitionStore {
            partition,
            tables: RwLock::new(Vec::new()),
            max_versions,
        }
    }

    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Get (or lazily create) a table.
    pub fn table(&self, id: TableId) -> Arc<Table> {
        let idx = id.0 as usize;
        {
            let tables = self.tables.read();
            if let Some(Some(t)) = tables.get(idx) {
                return Arc::clone(t);
            }
        }
        let mut tables = self.tables.write();
        if tables.len() <= idx {
            tables.resize(idx + 1, None);
        }
        if tables[idx].is_none() {
            tables[idx] = Some(Arc::new(Table::with_max_versions(self.max_versions)));
        }
        Arc::clone(tables[idx].as_ref().unwrap())
    }

    /// Look up a record.
    pub fn get(&self, table: TableId, key: Key) -> Option<Arc<Record>> {
        self.table(table).get(key)
    }

    /// Insert (or overwrite) a record during loading or transaction install.
    pub fn insert(&self, table: TableId, key: Key, value: Value) -> Arc<Record> {
        self.table(table).insert(key, value)
    }

    /// Number of records across all tables.
    pub fn total_records(&self) -> usize {
        self.tables.read().iter().flatten().map(|t| t.len()).sum()
    }

    /// Every instantiated table, with its id.
    pub fn tables(&self) -> Vec<(TableId, Arc<Table>)> {
        self.tables
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (TableId(i as u32), Arc::clone(t))))
            .collect()
    }

    /// Lifecycle-aware snapshot of every committed record:
    /// `(table, key, value, wts)`. See [`Table::snapshot_visible`] for the
    /// quiescence requirement.
    pub fn snapshot_visible(&self) -> Vec<(TableId, Key, Value, u64)> {
        let mut out = Vec::new();
        for (id, table) in self.tables() {
            for (k, v, ts) in table.snapshot_visible() {
                out.push((id, k, v, ts));
            }
        }
        out
    }

    /// Crash recovery step 1: drop every record in every table — the
    /// partition's volatile store is gone. The [`Table`] instances survive
    /// (protocol threads may hold `Arc<Table>` handles) but end up empty.
    /// Returns the number of records wiped.
    pub fn wipe(&self) -> usize {
        self.tables().into_iter().map(|(_, t)| t.clear()).sum()
    }

    /// Crash recovery step 2: put back one committed record (from a
    /// checkpoint image or a replayed log entry).
    pub fn restore(&self, table: TableId, key: Key, value: Value, ts: u64) -> Arc<Record> {
        self.table(table).restore(key, value, ts)
    }

    /// Version-chain GC across all tables: drop history versions shadowed by
    /// a newer version committed at or below `bound`. Returns how many
    /// versions were pruned.
    pub fn prune_versions(&self, bound: u64) -> usize {
        self.tables()
            .into_iter()
            .map(|(_, t)| t.prune_versions(bound))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_table_creation() {
        let s = PartitionStore::new(PartitionId(0));
        assert!(s.get(TableId(3), 1).is_none());
        s.insert(TableId(3), 1, Value::from_u64(9));
        assert_eq!(s.get(TableId(3), 1).unwrap().read().value.as_u64(), 9);
        assert_eq!(s.total_records(), 1);
        assert_eq!(s.partition(), PartitionId(0));
    }

    #[test]
    fn same_table_returns_same_instance() {
        let s = PartitionStore::new(PartitionId(1));
        let a = s.table(TableId(0));
        let b = s.table(TableId(0));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn tables_are_isolated() {
        let s = PartitionStore::new(PartitionId(0));
        s.insert(TableId(0), 5, Value::from_u64(1));
        s.insert(TableId(1), 5, Value::from_u64(2));
        assert_eq!(s.get(TableId(0), 5).unwrap().read().value.as_u64(), 1);
        assert_eq!(s.get(TableId(1), 5).unwrap().read().value.as_u64(), 2);
    }

    #[test]
    fn wipe_and_restore_round_trip() {
        let s = PartitionStore::new(PartitionId(0));
        s.insert(TableId(0), 1, Value::from_u64(10));
        s.insert(TableId(2), 9, Value::from_u64(20));
        // An uncommitted insert and a tombstone never appear in the snapshot.
        let owner = primo_common::TxnId::new(PartitionId(0), 1);
        let crate::table::InsertSlot::Created(_) = s.table(TableId(0)).insert_slot(50, owner)
        else {
            panic!("expected Created");
        };
        s.insert(TableId(0), 2, Value::from_u64(2))
            .install_tombstone(5);
        let mut snap = s.snapshot_visible();
        snap.sort_by_key(|(t, k, _, _)| (*t, *k));
        assert_eq!(snap.len(), 2);
        assert_eq!(s.tables().len(), 2);

        let wiped = s.wipe();
        assert_eq!(wiped, 4, "wipe drops every slot, whatever its lifecycle");
        assert_eq!(s.total_records(), 0);
        assert!(s.get(TableId(0), 1).is_none());

        for (t, k, v, ts) in snap {
            s.restore(t, k, v, ts);
        }
        let rec = s.get(TableId(0), 1).unwrap();
        assert_eq!(rec.read().value.as_u64(), 10);
        assert_eq!(rec.state(), crate::record::LifecycleState::Visible);
        assert_eq!(s.get(TableId(2), 9).unwrap().read().value.as_u64(), 20);
        assert_eq!(s.total_records(), 2);
    }
}
