//! In-memory shared-nothing storage: records with TicToc metadata, a
//! record-granularity lock manager (NO_WAIT / WAIT_DIE), sharded tables and
//! the per-partition store.
//!
//! Every protocol in the workspace (Primo, 2PL+2PC, Silo, Sundial, Aria,
//! TAPIR) runs on top of this same substrate, mirroring the paper's
//! methodology of implementing all competitors in one framework (§6.1.3).

pub mod lock;
pub mod partition;
pub mod record;
pub mod table;

pub use lock::{LockMode, LockPolicy, LockRequestResult, RecordLock};
pub use partition::PartitionStore;
pub use record::{LifecycleState, Record, RecordData, SnapshotRead, Version, DEFAULT_MAX_VERSIONS};
pub use table::{InsertSlot, Table};
