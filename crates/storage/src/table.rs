//! A sharded hash table mapping keys to records.
//!
//! Shards reduce contention on the table structure itself (not to be confused
//! with transaction-level record locks). Inserts are supported at runtime
//! (TPC-C NewOrder inserts orders and order-lines).

use crate::record::Record;
use parking_lot::RwLock;
use primo_common::{Key, Value};
use std::collections::HashMap;
use std::sync::Arc;

const DEFAULT_SHARDS: usize = 64;

/// A single table's worth of records owned by one partition.
#[derive(Debug)]
pub struct Table {
    shards: Vec<RwLock<HashMap<Key, Arc<Record>>>>,
}

impl Default for Table {
    fn default() -> Self {
        Self::new()
    }
}

impl Table {
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    pub fn with_shards(n: usize) -> Self {
        assert!(n > 0);
        Table {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        // Fibonacci hashing spreads sequential keys across shards.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % self.shards.len()
    }

    /// Look up a record by key.
    pub fn get(&self, key: Key) -> Option<Arc<Record>> {
        self.shards[self.shard_of(key)].read().get(&key).cloned()
    }

    /// Insert a record, replacing any existing one. Returns the record.
    pub fn insert(&self, key: Key, value: Value) -> Arc<Record> {
        let rec = Arc::new(Record::new(value));
        self.shards[self.shard_of(key)]
            .write()
            .insert(key, Arc::clone(&rec));
        rec
    }

    /// Insert only if absent; returns the (existing or new) record and whether
    /// an insert happened. Used for constraint checking (unique keys).
    pub fn insert_if_absent(&self, key: Key, value: Value) -> (Arc<Record>, bool) {
        let mut shard = self.shards[self.shard_of(key)].write();
        if let Some(existing) = shard.get(&key) {
            return (Arc::clone(existing), false);
        }
        let rec = Arc::new(Record::new(value));
        shard.insert(key, Arc::clone(&rec));
        (rec, true)
    }

    /// Remove a record.
    pub fn remove(&self, key: Key) -> bool {
        self.shards[self.shard_of(key)]
            .write()
            .remove(&key)
            .is_some()
    }

    pub fn contains(&self, key: Key) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(&key)
    }

    /// Number of records (O(shards), used by loaders and tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scan all keys satisfying a predicate. Primo handles large scans by
    /// falling back to shared predicate locks / 2PC (§4.2.2 corner cases);
    /// the scan itself is provided here.
    pub fn scan_keys(&self, mut pred: impl FnMut(Key) -> bool) -> Vec<Key> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for k in shard.read().keys() {
                if pred(*k) {
                    out.push(*k);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let t = Table::new();
        assert!(t.get(42).is_none());
        t.insert(42, Value::from_u64(7));
        assert_eq!(t.get(42).unwrap().read().value.as_u64(), 7);
        assert!(t.contains(42));
        assert_eq!(t.len(), 1);
        assert!(t.remove(42));
        assert!(!t.remove(42));
        assert!(t.is_empty());
    }

    #[test]
    fn insert_if_absent_respects_existing() {
        let t = Table::new();
        let (_, inserted) = t.insert_if_absent(1, Value::from_u64(10));
        assert!(inserted);
        let (rec, inserted) = t.insert_if_absent(1, Value::from_u64(20));
        assert!(!inserted);
        assert_eq!(rec.read().value.as_u64(), 10);
    }

    #[test]
    fn many_keys_distribute_over_shards() {
        let t = Table::with_shards(8);
        for k in 0..10_000u64 {
            t.insert(k, Value::from_u64(k));
        }
        assert_eq!(t.len(), 10_000);
        for k in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(k).unwrap().read().value.as_u64(), k);
        }
    }

    #[test]
    fn scan_keys_filters() {
        let t = Table::new();
        for k in 0..100u64 {
            t.insert(k, Value::from_u64(k));
        }
        let mut even = t.scan_keys(|k| k % 2 == 0);
        even.sort_unstable();
        assert_eq!(even.len(), 50);
        assert_eq!(even[0], 0);
        assert_eq!(even[49], 98);
    }
}
