//! A sharded hash table mapping keys to records.
//!
//! Shards reduce contention on the table structure itself (not to be confused
//! with transaction-level record locks). Inserts and deletes are supported at
//! runtime (TPC-C NewOrder inserts orders and order-lines; Delivery removes
//! NEW-ORDER rows): every membership-affecting lifecycle transition — create,
//! tombstone revival, abort-time unlink, tombstone reclamation — runs under
//! the owning shard's write lock so concurrent transitions serialize.

use crate::record::{LifecycleState, Record, DEFAULT_MAX_VERSIONS};
use parking_lot::RwLock;
use primo_common::{Key, TxnId, Value};
use std::collections::HashMap;
use std::sync::Arc;

const DEFAULT_SHARDS: usize = 64;

/// Outcome of [`Table::insert_slot`]: where the record backing an insert
/// came from.
#[derive(Debug, Clone)]
pub enum InsertSlot {
    /// The key already maps to a record the inserter may use (committed, or
    /// its own earlier uncommitted insert). The insert behaves as an update.
    Existing(Arc<Record>),
    /// A fresh record was created in `UncommittedInsert{owner}` state. Abort
    /// must unlink it via [`Table::unlink_created`].
    Created(Arc<Record>),
    /// A tombstoned record was revived into `UncommittedInsert{owner}`.
    /// Abort must restore the tombstone via
    /// [`Record::restore_tombstone`].
    Revived(Arc<Record>),
    /// Another transaction's uncommitted insert occupies the slot; the
    /// caller should abort with a retryable conflict.
    Busy,
}

/// A single table's worth of records owned by one partition.
#[derive(Debug)]
pub struct Table {
    shards: Vec<RwLock<HashMap<Key, Arc<Record>>>>,
    /// Version-chain depth applied to every record this table creates.
    max_versions: usize,
}

impl Default for Table {
    fn default() -> Self {
        Self::new()
    }
}

impl Table {
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    pub fn with_shards(n: usize) -> Self {
        Self::with_shards_and_versions(n, DEFAULT_MAX_VERSIONS)
    }

    /// A table whose records keep up to `max_versions` versions each
    /// (current + history); `max_versions` must be `>= 1`.
    pub fn with_max_versions(max_versions: usize) -> Self {
        Self::with_shards_and_versions(DEFAULT_SHARDS, max_versions)
    }

    pub fn with_shards_and_versions(n: usize, max_versions: usize) -> Self {
        assert!(n > 0);
        assert!(max_versions >= 1);
        Table {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            max_versions,
        }
    }

    fn new_record(&self, value: Value) -> Arc<Record> {
        let rec = Arc::new(Record::new(value));
        rec.set_max_versions(self.max_versions);
        rec
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        // Fibonacci hashing spreads sequential keys across shards.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % self.shards.len()
    }

    /// Look up a record by key.
    pub fn get(&self, key: Key) -> Option<Arc<Record>> {
        self.shards[self.shard_of(key)].read().get(&key).cloned()
    }

    /// Insert a record, replacing any existing one. Returns the record.
    pub fn insert(&self, key: Key, value: Value) -> Arc<Record> {
        let rec = self.new_record(value);
        self.shards[self.shard_of(key)]
            .write()
            .insert(key, Arc::clone(&rec));
        rec
    }

    /// Insert only if absent; returns the (existing or new) record and whether
    /// an insert happened. Used for constraint checking (unique keys).
    pub fn insert_if_absent(&self, key: Key, value: Value) -> (Arc<Record>, bool) {
        let mut shard = self.shards[self.shard_of(key)].write();
        if let Some(existing) = shard.get(&key) {
            return (Arc::clone(existing), false);
        }
        let rec = self.new_record(value);
        shard.insert(key, Arc::clone(&rec));
        (rec, true)
    }

    /// Claim the slot for an insert by `owner`: reuse an existing record,
    /// create a fresh `UncommittedInsert` one, or revive a tombstone. Runs
    /// under the shard write lock so it cannot race reclamation or another
    /// transaction's unlink.
    pub fn insert_slot(&self, key: Key, owner: TxnId) -> InsertSlot {
        let mut shard = self.shards[self.shard_of(key)].write();
        if let Some(existing) = shard.get(&key) {
            return match existing.state() {
                LifecycleState::Visible => InsertSlot::Existing(Arc::clone(existing)),
                LifecycleState::UncommittedInsert { owner: o } if o == owner => {
                    InsertSlot::Existing(Arc::clone(existing))
                }
                LifecycleState::UncommittedInsert { .. } => InsertSlot::Busy,
                LifecycleState::Tombstone => {
                    existing.set_state(LifecycleState::UncommittedInsert { owner });
                    InsertSlot::Revived(Arc::clone(existing))
                }
            };
        }
        let rec = Arc::new(Record::new_uncommitted(Value::zeroed(0), owner));
        rec.set_max_versions(self.max_versions);
        shard.insert(key, Arc::clone(&rec));
        InsertSlot::Created(rec)
    }

    /// Abort-time undo of [`InsertSlot::Created`]: unlink the record the
    /// aborting transaction created, but only if the slot still holds that
    /// exact record and it is still `owner`'s uncommitted insert.
    pub fn unlink_created(&self, key: Key, record: &Arc<Record>, owner: TxnId) -> bool {
        let mut shard = self.shards[self.shard_of(key)].write();
        let matches = shard.get(&key).is_some_and(|r| {
            Arc::ptr_eq(r, record) && r.state() == LifecycleState::UncommittedInsert { owner }
        });
        if matches {
            shard.remove(&key);
        }
        matches
    }

    /// Deferred reclamation of one committed delete: physically unlink the
    /// record if it is still a tombstone and nobody holds its lock (a lock
    /// holder resolved the record earlier and will re-check its lifecycle).
    pub fn reclaim(&self, key: Key) -> bool {
        let mut shard = self.shards[self.shard_of(key)].write();
        let reclaimable = shard
            .get(&key)
            .is_some_and(|r| r.state() == LifecycleState::Tombstone && !r.lock().is_locked());
        if reclaimable {
            shard.remove(&key);
        }
        reclaimable
    }

    /// Sweep every shard, unlinking all reclaimable tombstones. Returns how
    /// many records were removed. Normal commits reclaim their own deletes;
    /// this pass mops up tombstones whose reclaim lost a race (e.g. a lock
    /// still held at reclaim time).
    pub fn reclaim_tombstones(&self) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, r| {
                let gone = r.state() == LifecycleState::Tombstone && !r.lock().is_locked();
                removed += usize::from(gone);
                !gone
            });
        }
        removed
    }

    /// Remove a record.
    pub fn remove(&self, key: Key) -> bool {
        self.shards[self.shard_of(key)]
            .write()
            .remove(&key)
            .is_some()
    }

    pub fn contains(&self, key: Key) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(&key)
    }

    /// Number of physical slots, including tombstones and uncommitted inserts
    /// (O(shards), used by loaders and tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Number of committed ([`LifecycleState::Visible`]) records.
    pub fn live_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|r| r.state() == LifecycleState::Visible)
                    .count()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scan all *committed* keys satisfying a predicate: tombstones and
    /// uncommitted inserts are invisible to scans, like to reads. Primo
    /// handles large scans by falling back to shared predicate locks / 2PC
    /// (§4.2.2 corner cases); the scan itself is provided here.
    pub fn scan_keys(&self, mut pred: impl FnMut(Key) -> bool) -> Vec<Key> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (k, r) in shard.read().iter() {
                if r.state() == LifecycleState::Visible && pred(*k) {
                    out.push(*k);
                }
            }
        }
        out
    }

    /// Lifecycle-aware snapshot of the committed state: every `Visible`
    /// record's `(key, value, wts)`. Tombstones and uncommitted inserts are
    /// excluded — a checkpoint must never resurrect either. Each record is
    /// read atomically; for a consistent whole-table image call this while
    /// the table is quiescent (the base checkpoint taken right after
    /// loading).
    pub fn snapshot_visible(&self) -> Vec<(Key, Value, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (k, r) in shard.read().iter() {
                if r.state() == LifecycleState::Visible {
                    let row = r.read();
                    out.push((*k, row.value, row.wts));
                }
            }
        }
        out
    }

    /// Restore a record during crash recovery: the slot is (re)created
    /// `Visible` with `wts = rts = ts`, replacing whatever the wipe left
    /// behind. The restored chain answers snapshot reads only for horizons
    /// `>= ts` — the image carries no pre-crash history.
    pub fn restore(&self, key: Key, value: Value, ts: u64) -> Arc<Record> {
        let rec = Arc::new(Record::restored(value, ts));
        rec.set_max_versions(self.max_versions);
        self.shards[self.shard_of(key)]
            .write()
            .insert(key, Arc::clone(&rec));
        rec
    }

    /// Version-chain GC over every record: drop history versions shadowed by
    /// a newer version committed at or below `bound` (see
    /// [`Record::prune_versions`]). Returns how many versions were pruned.
    pub fn prune_versions(&self, bound: u64) -> usize {
        let mut pruned = 0;
        for shard in &self.shards {
            for r in shard.read().values() {
                pruned += r.prune_versions(bound);
            }
        }
        pruned
    }

    /// Drop every record (the crashed partition's volatile state is gone).
    /// Returns how many slots were removed. Records still referenced by
    /// in-flight transactions become detached: installing into them no
    /// longer affects the table.
    pub fn clear(&self) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            removed += shard.len();
            shard.clear();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let t = Table::new();
        assert!(t.get(42).is_none());
        t.insert(42, Value::from_u64(7));
        assert_eq!(t.get(42).unwrap().read().value.as_u64(), 7);
        assert!(t.contains(42));
        assert_eq!(t.len(), 1);
        assert!(t.remove(42));
        assert!(!t.remove(42));
        assert!(t.is_empty());
    }

    #[test]
    fn insert_if_absent_respects_existing() {
        let t = Table::new();
        let (_, inserted) = t.insert_if_absent(1, Value::from_u64(10));
        assert!(inserted);
        let (rec, inserted) = t.insert_if_absent(1, Value::from_u64(20));
        assert!(!inserted);
        assert_eq!(rec.read().value.as_u64(), 10);
    }

    #[test]
    fn many_keys_distribute_over_shards() {
        let t = Table::with_shards(8);
        for k in 0..10_000u64 {
            t.insert(k, Value::from_u64(k));
        }
        assert_eq!(t.len(), 10_000);
        for k in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(k).unwrap().read().value.as_u64(), k);
        }
    }

    fn t(seq: u64) -> TxnId {
        TxnId::new(primo_common::PartitionId(0), seq)
    }

    #[test]
    fn insert_slot_creates_revives_and_reports_busy() {
        let table = Table::new();
        let (a, b) = (t(1), t(2));
        // Fresh key -> Created, in the creator's uncommitted state.
        let created = match table.insert_slot(7, a) {
            InsertSlot::Created(r) => r,
            other => panic!("expected Created, got {other:?}"),
        };
        assert_eq!(
            created.state(),
            LifecycleState::UncommittedInsert { owner: a }
        );
        // The creator sees its own slot as Existing; others see Busy.
        assert!(matches!(table.insert_slot(7, a), InsertSlot::Existing(_)));
        assert!(matches!(table.insert_slot(7, b), InsertSlot::Busy));
        // Commit, delete, then a new insert revives the tombstone in place.
        created.install_next_version(Value::from_u64(1));
        assert!(matches!(table.insert_slot(7, b), InsertSlot::Existing(_)));
        created.install_tombstone_next_version();
        let revived = match table.insert_slot(7, b) {
            InsertSlot::Revived(r) => r,
            other => panic!("expected Revived, got {other:?}"),
        };
        assert!(Arc::ptr_eq(&revived, &created));
        assert_eq!(
            revived.state(),
            LifecycleState::UncommittedInsert { owner: b }
        );
    }

    #[test]
    fn unlink_created_is_guarded_by_pointer_and_state() {
        let table = Table::new();
        let owner = t(3);
        let InsertSlot::Created(rec) = table.insert_slot(1, owner) else {
            panic!("expected Created");
        };
        // A different record (or an installed one) is never unlinked.
        let stranger = Arc::new(Record::new(Value::from_u64(0)));
        assert!(!table.unlink_created(1, &stranger, owner));
        assert!(table.contains(1));
        rec.install_next_version(Value::from_u64(9));
        assert!(!table.unlink_created(1, &rec, owner));
        assert!(table.contains(1));
        // A genuinely uncommitted create is unlinked.
        let InsertSlot::Created(fresh) = table.insert_slot(2, owner) else {
            panic!("expected Created");
        };
        assert!(table.unlink_created(2, &fresh, owner));
        assert!(!table.contains(2));
    }

    #[test]
    fn reclaim_unlinks_only_unlocked_tombstones() {
        let table = Table::new();
        let rec = table.insert(5, Value::from_u64(1));
        assert!(!table.reclaim(5), "a visible record is never reclaimed");
        rec.install_tombstone_next_version();
        rec.acquire(
            t(1),
            crate::lock::LockMode::Exclusive,
            crate::lock::LockPolicy::NoWait,
        );
        assert!(!table.reclaim(5), "a locked tombstone is skipped");
        rec.release(t(1));
        assert!(table.reclaim(5));
        assert!(!table.contains(5));
    }

    #[test]
    fn reclaim_tombstones_sweeps_all_shards() {
        let table = Table::with_shards(4);
        for k in 0..100u64 {
            let r = table.insert(k, Value::from_u64(k));
            if k % 2 == 0 {
                r.install_tombstone_next_version();
            }
        }
        assert_eq!(table.reclaim_tombstones(), 50);
        assert_eq!(table.len(), 50);
        assert_eq!(table.live_len(), 50);
    }

    #[test]
    fn scans_and_live_len_skip_invisible_records() {
        let table = Table::new();
        table.insert(1, Value::from_u64(1));
        table.insert(2, Value::from_u64(2)).install_tombstone(9);
        let InsertSlot::Created(_) = table.insert_slot(3, t(1)) else {
            panic!("expected Created");
        };
        assert_eq!(table.len(), 3);
        assert_eq!(table.live_len(), 1);
        assert_eq!(table.scan_keys(|_| true), vec![1]);
    }

    #[test]
    fn scan_keys_filters() {
        let t = Table::new();
        for k in 0..100u64 {
            t.insert(k, Value::from_u64(k));
        }
        let mut even = t.scan_keys(|k| k % 2 == 0);
        even.sort_unstable();
        assert_eq!(even.len(), 50);
        assert_eq!(even[0], 0);
        assert_eq!(even[49], 98);
    }
}
