//! MVCC snapshot execution for declared read-only transactions.
//!
//! A read-only program ([`TxnProgram::is_read_only`]) is resolved against the
//! cluster's durable group-commit horizon instead of running through the
//! concurrency-control protocol: every read walks the record's bounded
//! version chain ([`Record::read_at`](primo_storage::Record::read_at)) at a
//! snapshot timestamp no in-flight transaction can still write below and no
//! crash can ever roll back. The session therefore takes **no locks**,
//! performs **no validation** and **never aborts on conflict** — the three
//! costs Primo's watermark horizon (and the per-scheme equivalents) exist to
//! eliminate for read-dominated workloads.
//!
//! The chain is bounded, so a horizon older than the retained history cannot
//! always be answered. Every unanswerable read (evicted version, reclaimed
//! record, un-timestamped legacy install) surfaces as
//! [`SnapshotOutcome::Fallback`]: the caller re-runs the program through the
//! regular protocol, which is always correct, merely slower. Fallback is a
//! performance path, never a correctness one.

use crate::cluster::Cluster;
use crate::txn::{TxnContext, TxnProgram};
use primo_common::{AbortReason, Key, PartitionId, TableId, Ts, TxnError, TxnResult, Value};
use primo_storage::SnapshotRead;

/// How a snapshot execution attempt ended.
#[derive(Debug)]
pub enum SnapshotOutcome {
    /// The program ran to completion against the snapshot (or aborted for a
    /// program-level reason, e.g. a user rollback — carried inside).
    Done(TxnResult<()>),
    /// A read could not be answered at the snapshot horizon (version evicted
    /// or record reclaimed): re-run through the regular protocol.
    Fallback,
}

/// The [`TxnContext`] a snapshot execution runs against: version-chain reads
/// at a fixed horizon, no write support (a declared read-only program that
/// writes falls back to the protocol, which enforces real semantics).
pub struct SnapshotSession<'a> {
    cluster: &'a Cluster,
    home: PartitionId,
    /// The snapshot timestamp (cluster-wide minimum horizon at begin).
    horizon: Ts,
    /// Remote partitions this session already shipped a read batch to: the
    /// first read against each non-home partition is charged one round trip
    /// (the snapshot request carries the horizon and returns versioned
    /// payloads); subsequent reads ride the same stream.
    visited: Vec<PartitionId>,
    /// Set when a read was unanswerable at the horizon: the caller must
    /// fall back to the protocol, whatever error unwound the program.
    needs_fallback: bool,
    reads: usize,
}

impl<'a> SnapshotSession<'a> {
    pub fn new(cluster: &'a Cluster, home: PartitionId) -> Self {
        SnapshotSession {
            cluster,
            home,
            horizon: cluster.snapshot_horizon(),
            visited: Vec::new(),
            needs_fallback: false,
            reads: 0,
        }
    }

    /// The horizon this session resolves reads at.
    pub fn horizon(&self) -> Ts {
        self.horizon
    }

    /// Reads the session answered from version chains.
    pub fn reads(&self) -> usize {
        self.reads
    }

    fn fallback<T>(&mut self) -> TxnResult<T> {
        self.needs_fallback = true;
        // The reason is never surfaced: the caller checks `needs_fallback`
        // before interpreting the error. Validation is the closest semantic
        // (the snapshot could not vouch for this read).
        Err(TxnError::Aborted(AbortReason::Validation))
    }

    fn charge_network(&mut self, p: PartitionId) -> TxnResult<()> {
        if p == self.home || self.visited.contains(&p) {
            return Ok(());
        }
        // One round trip ships the whole per-partition read batch; the
        // session never revisits the charge. A crashed partition cannot
        // serve snapshot reads any more than protocol reads.
        if !self.cluster.net.round_trip(self.home, p) {
            return Err(TxnError::Aborted(AbortReason::RemoteUnavailable));
        }
        self.visited.push(p);
        Ok(())
    }
}

impl TxnContext for SnapshotSession<'_> {
    fn read(&mut self, partition: PartitionId, table: TableId, key: Key) -> TxnResult<Value> {
        self.charge_network(partition)?;
        let store = &self.cluster.partition(partition).store;
        let Some(record) = store.table(table).get(key) else {
            // No record: deferred tombstone reclamation may have unlinked a
            // version whose deletion the horizon predates, so absence of a
            // record proves nothing — only the protocol can answer.
            return self.fallback();
        };
        self.reads += 1;
        match record.read_at(self.horizon) {
            SnapshotRead::Value(v) => Ok(v),
            // A committed deletion (or a pre-creation horizon) the chain can
            // vouch for: the key did not exist at the snapshot.
            SnapshotRead::Absent => Err(TxnError::Aborted(AbortReason::NotFound)),
            SnapshotRead::Miss => self.fallback(),
        }
    }

    fn write(&mut self, _p: PartitionId, _t: TableId, _k: Key, _v: Value) -> TxnResult<()> {
        // A mis-declared read-only program: hand it to the protocol rather
        // than guessing at write semantics here.
        self.fallback()
    }

    fn insert(&mut self, _p: PartitionId, _t: TableId, _k: Key, _v: Value) -> TxnResult<()> {
        self.fallback()
    }

    fn delete(&mut self, _p: PartitionId, _t: TableId, _k: Key) -> TxnResult<()> {
        self.fallback()
    }
}

/// Execute a declared read-only program against the snapshot horizon.
/// Returns [`SnapshotOutcome::Fallback`] when any read was unanswerable —
/// the caller re-runs through the protocol.
pub fn execute_snapshot(cluster: &Cluster, program: &dyn TxnProgram) -> SnapshotOutcome {
    let mut session = SnapshotSession::new(cluster, program.home_partition());
    let result = program.execute(&mut session);
    if session.needs_fallback {
        SnapshotOutcome::Fallback
    } else {
        // Snapshot sessions take no ticket, so there is no TxnId to stamp —
        // the horizon itself is the interesting coordinate.
        cluster.recorder.emit(
            None,
            Some(session.home),
            primo_trace::TraceEventKind::SnapshotRead {
                horizon: session.horizon,
            },
        );
        SnapshotOutcome::Done(result)
    }
}

/// Whether this cluster serves declared read-only programs from the MVCC
/// snapshot (the `primo.read_only_snapshot` knob; off = every transaction
/// runs through the protocol, the validate-everything baseline).
pub fn snapshot_reads_enabled(cluster: &Cluster) -> bool {
    cluster.config.primo.read_only_snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::ClosureProgram;
    use primo_common::config::ClusterConfig;
    use primo_common::{TableId, Value};

    fn loaded_cluster() -> std::sync::Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        for p in cluster.partition_ids() {
            for k in 0..4u64 {
                cluster
                    .partition(p)
                    .store
                    .insert(TableId(0), k, Value::from_u64(100 + k));
            }
        }
        cluster
    }

    #[test]
    fn snapshot_session_reads_loaded_data_without_locks() {
        let cluster = loaded_cluster();
        // Loader records commit "at time zero": even horizon 0 serves them.
        let prog = ClosureProgram::new(PartitionId(0), |ctx| {
            assert_eq!(ctx.read(PartitionId(0), TableId(0), 1)?.as_u64(), 101);
            assert_eq!(ctx.read(PartitionId(1), TableId(0), 2)?.as_u64(), 102);
            Ok(())
        })
        .read_only();
        let outcome = execute_snapshot(&cluster, &prog);
        assert!(matches!(outcome, SnapshotOutcome::Done(Ok(()))));
        // No record lock was ever touched.
        let rec = cluster.partition(PartitionId(0)).store.get(TableId(0), 1);
        assert!(!rec.unwrap().lock().is_locked());
        cluster.shutdown();
    }

    #[test]
    fn missing_record_forces_protocol_fallback() {
        let cluster = loaded_cluster();
        let prog = ClosureProgram::new(PartitionId(0), |ctx| {
            ctx.read(PartitionId(0), TableId(0), 999)?;
            Ok(())
        })
        .read_only();
        let outcome = execute_snapshot(&cluster, &prog);
        assert!(matches!(outcome, SnapshotOutcome::Fallback));
        cluster.shutdown();
    }

    #[test]
    fn writes_in_a_declared_read_only_program_fall_back() {
        let cluster = loaded_cluster();
        let prog = ClosureProgram::new(PartitionId(0), |ctx| {
            ctx.write(PartitionId(0), TableId(0), 1, Value::from_u64(7))?;
            Ok(())
        })
        .read_only();
        let outcome = execute_snapshot(&cluster, &prog);
        assert!(matches!(outcome, SnapshotOutcome::Fallback));
        // Nothing was installed.
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 1)
            .unwrap();
        assert_eq!(rec.read().value.as_u64(), 101);
        cluster.shutdown();
    }

    #[test]
    fn unanswerable_horizon_misses_fall_back_not_abort() {
        let cluster = loaded_cluster();
        // An un-timestamped install (legacy path) makes the record
        // unanswerable at any horizon.
        let rec = cluster
            .partition(PartitionId(0))
            .store
            .get(TableId(0), 3)
            .unwrap();
        rec.install_next_version(Value::from_u64(7));
        let prog = ClosureProgram::new(PartitionId(0), |ctx| {
            ctx.read(PartitionId(0), TableId(0), 3)?;
            Ok(())
        })
        .read_only();
        let outcome = execute_snapshot(&cluster, &prog);
        assert!(matches!(outcome, SnapshotOutcome::Fallback));
        cluster.shutdown();
    }
}
