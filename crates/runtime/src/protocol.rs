//! The distributed transaction protocol abstraction.
//!
//! A protocol implements exactly one *attempt* of a transaction: execute the
//! program, acquire whatever locks / validation it needs, and either install
//! the write-set (returning the commit information) or abort. Retries,
//! back-off, group commit and metrics are the worker loop's job, so every
//! protocol is measured under identical conditions — the same methodology the
//! paper uses by implementing all competitors in one framework.

use crate::cluster::Cluster;
use crate::prefetch::ReadFanout;
use crate::txn::TxnProgram;
use primo_common::{PhaseTimers, Ts, TxnId, TxnResult};
use primo_wal::TxnTicket;

/// Information about a successfully installed transaction attempt.
#[derive(Debug, Clone, Copy)]
pub struct CommittedTxn {
    /// Logical commit timestamp (0 if the protocol has none; the group-commit
    /// scheme will assign a sequence timestamp as needed).
    pub ts: Ts,
    /// Number of records accessed (reads + writes) — used by CLV's
    /// dependency-tracking model and by per-op accounting.
    pub ops: usize,
    /// Whether the transaction touched more than one partition.
    pub distributed: bool,
}

/// A distributed transaction protocol.
pub trait Protocol: Send + Sync {
    /// Label used in figures ("Primo", "2PL(NW)", ...).
    fn name(&self) -> &'static str;

    /// True if the protocol confirms durability itself (Aria's sequencing
    /// layer logs inputs before execution; TAPIR replicates synchronously in
    /// its prepare round). The worker then skips the group-commit wait.
    fn manages_durability(&self) -> bool {
        false
    }

    /// Run one attempt of `program` with transaction id `txn`.
    ///
    /// On success the write-set is fully installed on all involved
    /// partitions and all locks are released; on failure every partial
    /// effect has been undone / released.
    ///
    /// `fanout` is the attempt's prefetch buffer (resolved by the worker
    /// from the program's hint or the previous attempt's learned footprint;
    /// [`ReadFanout::empty`] when batching is off): the protocol's context
    /// consults it before charging per-record remote round trips, and
    /// reports the remote accesses it actually performs for footprint
    /// learning. It never changes what commits — only what the network
    /// charges.
    fn execute_once(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        program: &dyn TxnProgram,
        ticket: &TxnTicket,
        timers: &mut PhaseTimers,
        fanout: &ReadFanout,
    ) -> TxnResult<CommittedTxn>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::PartitionId;

    /// A no-op protocol used to exercise the trait object plumbing.
    struct NoopProtocol;

    impl Protocol for NoopProtocol {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn execute_once(
            &self,
            _cluster: &Cluster,
            _txn: TxnId,
            _program: &dyn TxnProgram,
            _ticket: &TxnTicket,
            _timers: &mut PhaseTimers,
            _fanout: &ReadFanout,
        ) -> TxnResult<CommittedTxn> {
            Ok(CommittedTxn {
                ts: 1,
                ops: 0,
                distributed: false,
            })
        }
    }

    #[test]
    fn protocol_trait_object_works() {
        let p: Box<dyn Protocol> = Box::new(NoopProtocol);
        assert_eq!(p.name(), "noop");
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let txn = cluster.next_txn_id(PartitionId(0));
        let ticket = cluster.group_commit.begin_txn(PartitionId(0), txn);
        let prog = crate::txn::IncrementProgram {
            home: PartitionId(0),
            accesses: vec![],
        };
        let mut timers = PhaseTimers::new();
        let out = p
            .execute_once(
                &cluster,
                txn,
                &prog,
                &ticket,
                &mut timers,
                &ReadFanout::empty(),
            )
            .unwrap();
        assert_eq!(out.ts, 1);
        assert!(!out.distributed);
        cluster.shutdown();
    }
}
