//! Write-ahead logging of committed write-sets.
//!
//! Every protocol's install path funnels through [`log_txn_writes`] right
//! before it installs: the write-set is grouped by partition and appended to
//! each involved partition's [`ReplicatedLog`](primo_wal::ReplicatedLog)
//! (which fans it out to every replica) as one [`LogPayload::TxnWrites`]
//! entry.
//!
//! Two invariants the recovery subsystem depends on:
//!
//! * **Log before results.** The append happens before the group commit is
//!   told `txn_committed`, so no scheme can cover a transaction with a
//!   watermark / epoch whose log entry does not exist yet (§5: write-sets
//!   are logged before results are returned).
//! * **Per-key log order = install order.** Callers append while still
//!   holding their exclusive write locks, and `ts` is the *finalized* commit
//!   timestamp
//!   ([`GroupCommit::finalize_commit_ts`](primo_wal::GroupCommit::finalize_commit_ts)),
//!   so replaying in commit-
//!   timestamp order reproduces exactly the installed per-key value
//!   sequence.

use crate::access::{WriteEntry, WriteKind};
use crate::cluster::Cluster;
use primo_common::{PartitionId, Ts, TxnId};
use primo_storage::LifecycleState;
use primo_trace::TraceEventKind;
use primo_wal::{LogPayload, LoggedOp, LoggedWrite};

/// The committed before-image of the record a write is about to install
/// into: `Some(value)` for a `Visible` record, `None` when the key has no
/// committed value — the slot is absent, a tombstone, or this transaction's
/// own uncommitted insert (created or revived ahead of the commit decision).
/// Must be called while the write locks are held, so the observed value is
/// exactly what compensation has to restore if a crash rolls the
/// transaction back on a surviving partition.
fn before_image(cluster: &Cluster, w: &WriteEntry, txn: TxnId) -> Option<primo_common::Value> {
    let record = cluster.partition(w.partition).store.get(w.table, w.key)?;
    match record.state() {
        LifecycleState::Visible => Some(record.read().value),
        LifecycleState::UncommittedInsert { owner } => {
            debug_assert_eq!(
                owner, txn,
                "foreign uncommitted insert under our write lock"
            );
            None
        }
        LifecycleState::Tombstone => None,
    }
}

/// Append one `TxnWrites` entry per involved partition for a transaction
/// committing at `ts`. Deletes are logged as [`LoggedOp::Delete`]; puts and
/// inserts both log the installed value (replay is create-if-absent either
/// way). Every write also captures its committed before-image — the
/// `Visible` value observed under the held write lock, or `None` when the
/// key has no committed value — so a crash-abort can be compensated on
/// surviving partitions.
///
/// The write-set is grouped by partition in a single pass (write-sets are
/// small, so group lookup is a short `Vec` scan, not a hash map), so a
/// cross-partition commit acquires each involved partition's log sequencer
/// **exactly once** — all of a partition's writes travel in one entry, and
/// the fan-out to follower replicas happens off this critical section in
/// the log's replication pump (see the append pipeline in
/// `primo_wal::replicated`).
pub fn log_txn_writes(cluster: &Cluster, txn: TxnId, ts: Ts, writes: &[WriteEntry]) {
    if writes.is_empty() {
        return;
    }
    let mut groups: Vec<(PartitionId, Vec<LoggedWrite>)> = Vec::new();
    for w in writes {
        let logged = LoggedWrite {
            table: w.table,
            key: w.key,
            op: match w.kind {
                WriteKind::Delete => LoggedOp::Delete,
                WriteKind::Put | WriteKind::Insert => LoggedOp::Put(w.value.clone()),
            },
            prev: before_image(cluster, w, txn),
        };
        match groups.iter_mut().find(|(p, _)| *p == w.partition) {
            Some((_, group)) => group.push(logged),
            None => groups.push((w.partition, vec![logged])),
        }
    }
    for (partition, logged) in groups {
        let log = &cluster.partition(partition).log;
        let lsn = log.append(LogPayload::TxnWrites {
            txn,
            ts,
            writes: logged,
        });
        cluster.recorder.emit(
            Some(txn),
            Some(partition),
            TraceEventKind::WalAppend {
                lsn,
                term: log.term(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_wal::ReplayBound;

    #[test]
    fn write_sets_are_grouped_per_partition() {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        let txn = cluster.next_txn_id(PartitionId(0));
        let writes = vec![
            WriteEntry::put(PartitionId(0), TableId(0), 1, Value::from_u64(1)),
            WriteEntry::delete(PartitionId(1), TableId(0), 2),
            WriteEntry::insert(PartitionId(0), TableId(1), 3, Value::from_u64(3)),
        ];
        let base0 = cluster.partition(PartitionId(0)).log.len();
        let base1 = cluster.partition(PartitionId(1)).log.len();
        log_txn_writes(&cluster, txn, 7, &writes);
        assert_eq!(cluster.partition(PartitionId(0)).log.len(), base0 + 1);
        assert_eq!(cluster.partition(PartitionId(1)).log.len(), base1 + 1);

        std::thread::sleep(std::time::Duration::from_millis(60));
        let replayed =
            cluster
                .partition(PartitionId(0))
                .log
                .replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        let ours = replayed.iter().find(|(t, _, _)| *t == txn).unwrap();
        assert_eq!(ours.1, 7);
        assert_eq!(ours.2.len(), 2, "both P0 writes in one entry");
        let remote =
            cluster
                .partition(PartitionId(1))
                .log
                .replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        let ours = remote.iter().find(|(t, _, _)| *t == txn).unwrap();
        assert!(matches!(ours.2[0].op, LoggedOp::Delete));
        cluster.shutdown();
    }

    #[test]
    fn before_images_capture_the_committed_value() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let p = PartitionId(0);
        cluster
            .partition(p)
            .store
            .insert(TableId(0), 1, Value::from_u64(11));
        cluster
            .partition(p)
            .store
            .insert(TableId(0), 2, Value::from_u64(22));
        let txn = cluster.next_txn_id(p);
        let writes = vec![
            WriteEntry::put(p, TableId(0), 1, Value::from_u64(100)),
            WriteEntry::delete(p, TableId(0), 2),
            WriteEntry::insert(p, TableId(0), 3, Value::from_u64(33)),
        ];
        log_txn_writes(&cluster, txn, 5, &writes);
        std::thread::sleep(std::time::Duration::from_millis(60));
        let replayed = cluster
            .partition(p)
            .log
            .replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        let ours = &replayed.iter().find(|(t, _, _)| *t == txn).unwrap().2;
        assert_eq!(
            ours[0].prev.as_ref().unwrap().as_u64(),
            11,
            "put records the old value"
        );
        assert_eq!(
            ours[1].prev.as_ref().unwrap().as_u64(),
            22,
            "delete records the deleted value"
        );
        assert!(
            ours[2].prev.is_none(),
            "insert of a fresh key has no before-image"
        );
        cluster.shutdown();
    }

    #[test]
    fn empty_write_sets_log_nothing() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let txn = cluster.next_txn_id(PartitionId(0));
        let before = cluster.partition(PartitionId(0)).log.len();
        log_txn_writes(&cluster, txn, 1, &[]);
        assert_eq!(cluster.partition(PartitionId(0)).log.len(), before);
        cluster.shutdown();
    }
}
