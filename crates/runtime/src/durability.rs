//! Write-ahead logging of committed write-sets.
//!
//! Every protocol's install path funnels through [`log_txn_writes`] right
//! before it installs: the write-set is grouped by partition and appended to
//! each involved partition's [`PartitionWal`](primo_wal::PartitionWal) as
//! one [`LogPayload::TxnWrites`] entry.
//!
//! Two invariants the recovery subsystem depends on:
//!
//! * **Log before results.** The append happens before the group commit is
//!   told `txn_committed`, so no scheme can cover a transaction with a
//!   watermark / epoch whose log entry does not exist yet (§5: write-sets
//!   are logged before results are returned).
//! * **Per-key log order = install order.** Callers append while still
//!   holding their exclusive write locks, and `ts` is the *finalized* commit
//!   timestamp
//!   ([`GroupCommit::finalize_commit_ts`](primo_wal::GroupCommit::finalize_commit_ts)),
//!   so replaying in commit-
//!   timestamp order reproduces exactly the installed per-key value
//!   sequence.

use crate::access::{WriteEntry, WriteKind};
use crate::cluster::Cluster;
use primo_common::{Ts, TxnId};
use primo_wal::{LogPayload, LoggedOp, LoggedWrite};

/// Append one `TxnWrites` entry per involved partition for a transaction
/// committing at `ts`. Deletes are logged as [`LoggedOp::Delete`]; puts and
/// inserts both log the installed value (replay is create-if-absent either
/// way).
pub fn log_txn_writes(cluster: &Cluster, txn: TxnId, ts: Ts, writes: &[WriteEntry]) {
    if writes.is_empty() {
        return;
    }
    // Write-sets are small; scan per distinct partition instead of building
    // a map.
    let mut done: Vec<primo_common::PartitionId> = Vec::new();
    for w in writes {
        if done.contains(&w.partition) {
            continue;
        }
        done.push(w.partition);
        let logged: Vec<LoggedWrite> = writes
            .iter()
            .filter(|x| x.partition == w.partition)
            .map(|x| LoggedWrite {
                table: x.table,
                key: x.key,
                op: match x.kind {
                    WriteKind::Delete => LoggedOp::Delete,
                    WriteKind::Put | WriteKind::Insert => LoggedOp::Put(x.value.clone()),
                },
            })
            .collect();
        cluster
            .partition(w.partition)
            .wal
            .append(LogPayload::TxnWrites {
                txn,
                ts,
                writes: logged,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{PartitionId, TableId, Value};
    use primo_wal::ReplayBound;

    #[test]
    fn write_sets_are_grouped_per_partition() {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        let txn = cluster.next_txn_id(PartitionId(0));
        let writes = vec![
            WriteEntry::put(PartitionId(0), TableId(0), 1, Value::from_u64(1)),
            WriteEntry::delete(PartitionId(1), TableId(0), 2),
            WriteEntry::insert(PartitionId(0), TableId(1), 3, Value::from_u64(3)),
        ];
        let base0 = cluster.partition(PartitionId(0)).wal.len();
        let base1 = cluster.partition(PartitionId(1)).wal.len();
        log_txn_writes(&cluster, txn, 7, &writes);
        assert_eq!(cluster.partition(PartitionId(0)).wal.len(), base0 + 1);
        assert_eq!(cluster.partition(PartitionId(1)).wal.len(), base1 + 1);

        std::thread::sleep(std::time::Duration::from_millis(60));
        let replayed =
            cluster
                .partition(PartitionId(0))
                .wal
                .replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        let ours = replayed.iter().find(|(t, _, _)| *t == txn).unwrap();
        assert_eq!(ours.1, 7);
        assert_eq!(ours.2.len(), 2, "both P0 writes in one entry");
        let remote =
            cluster
                .partition(PartitionId(1))
                .wal
                .replay_range(0, &ReplayBound::Ts(u64::MAX), None);
        let ours = remote.iter().find(|(t, _, _)| *t == txn).unwrap();
        assert!(matches!(ours.2[0].op, LoggedOp::Delete));
        cluster.shutdown();
    }

    #[test]
    fn empty_write_sets_log_nothing() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let txn = cluster.next_txn_id(PartitionId(0));
        let before = cluster.partition(PartitionId(0)).wal.len();
        log_txn_writes(&cluster, txn, 1, &[]);
        assert_eq!(cluster.partition(PartitionId(0)).wal.len(), before);
        cluster.shutdown();
    }
}
