//! Cluster assembly: one [`Partition`] per shared-nothing partition leader,
//! plus the simulated network, control bus and group-commit scheme shared by
//! all of them.

use primo_common::config::ClusterConfig;
use primo_common::{PartitionId, TxnId};
use primo_net::{DelayedBus, SimNetwork};
use primo_storage::PartitionStore;
use primo_wal::{build_group_commit, GroupCommit, PartitionWal};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shared-nothing partition (leader).
#[derive(Debug)]
pub struct Partition {
    pub id: PartitionId,
    pub store: PartitionStore,
    pub wal: Arc<PartitionWal>,
    /// Local transaction counter for TID assignment (§4.1).
    next_seq: AtomicU64,
    /// Extra per-transaction execution delay, microseconds. Simulates a slow
    /// partition ("masked cores", Fig 13b).
    slowdown_us: AtomicU64,
}

impl Partition {
    fn new(id: PartitionId, persist_delay_us: u64) -> Self {
        Partition {
            id,
            store: PartitionStore::new(id),
            wal: Arc::new(PartitionWal::new(id, persist_delay_us)),
            next_seq: AtomicU64::new(1),
            slowdown_us: AtomicU64::new(0),
        }
    }

    /// Assign a globally unique TID coordinated by this partition.
    pub fn next_txn_id(&self, global_seq: &AtomicU64) -> TxnId {
        // The sequence component is global so that WAIT_DIE priorities are
        // comparable across coordinators (older == smaller everywhere).
        let seq = global_seq.fetch_add(1, Ordering::Relaxed);
        let _ = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TxnId::new(self.id, seq)
    }

    pub fn set_slowdown_us(&self, us: u64) {
        self.slowdown_us.store(us, Ordering::Relaxed);
    }

    pub fn slowdown_us(&self) -> u64 {
        self.slowdown_us.load(Ordering::Relaxed)
    }

    /// Number of transactions this partition has coordinated.
    pub fn coordinated_txns(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }
}

/// The whole simulated cluster.
pub struct Cluster {
    pub config: ClusterConfig,
    pub partitions: Vec<Arc<Partition>>,
    pub net: Arc<SimNetwork>,
    pub bus: Arc<DelayedBus>,
    pub group_commit: Arc<dyn GroupCommit>,
    /// Global transaction sequence (see [`Partition::next_txn_id`]).
    global_seq: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.partitions.len())
            .field("group_commit", &self.group_commit.label())
            .finish()
    }
}

impl Cluster {
    /// Build a cluster from a configuration: partitions, network, control
    /// bus and the configured group-commit scheme.
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        let n = config.num_partitions;
        let net = Arc::new(SimNetwork::new(n, config.net, config.seed));
        // Control messages (watermarks / epochs) travel one-way over the bus;
        // give them the same base latency as a data message.
        let bus = DelayedBus::new(n, config.net.one_way_us + config.net.control_msg_extra_us);
        let group_commit = build_group_commit(n, config.wal, Arc::clone(&bus));
        let partitions = (0..n)
            .map(|p| {
                Arc::new(Partition::new(
                    PartitionId(p as u32),
                    config.wal.persist_delay_us,
                ))
            })
            .collect();
        Arc::new(Cluster {
            config,
            partitions,
            net,
            bus,
            group_commit,
            global_seq: AtomicU64::new(1),
        })
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn partition(&self, id: PartitionId) -> &Arc<Partition> {
        &self.partitions[id.idx()]
    }

    /// Assign a new TID coordinated by `coord`.
    pub fn next_txn_id(&self, coord: PartitionId) -> TxnId {
        self.partitions[coord.idx()].next_txn_id(&self.global_seq)
    }

    /// All partition ids.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        (0..self.partitions.len())
            .map(|p| PartitionId(p as u32))
            .collect()
    }

    /// Stop background threads (group commit agents, bus pump).
    pub fn shutdown(&self) {
        self.group_commit.shutdown();
        self.bus.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{TableId, Value};

    #[test]
    fn cluster_builds_with_partitions_and_gc() {
        let cluster = Cluster::new(ClusterConfig::for_tests(3));
        assert_eq!(cluster.num_partitions(), 3);
        assert_eq!(cluster.partition_ids().len(), 3);
        assert_eq!(cluster.group_commit.label(), "Watermark");
        cluster.shutdown();
    }

    #[test]
    fn txn_ids_are_unique_and_ordered_globally() {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        let a = cluster.next_txn_id(PartitionId(0));
        let b = cluster.next_txn_id(PartitionId(1));
        let c = cluster.next_txn_id(PartitionId(0));
        assert!(a < b && b < c);
        assert_eq!(cluster.partition(PartitionId(0)).coordinated_txns(), 2);
        cluster.shutdown();
    }

    #[test]
    fn partition_store_is_usable() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let p = cluster.partition(PartitionId(0));
        p.store.insert(TableId(0), 5, Value::from_u64(9));
        assert_eq!(p.store.get(TableId(0), 5).unwrap().read().value.as_u64(), 9);
        p.set_slowdown_us(100);
        assert_eq!(p.slowdown_us(), 100);
        cluster.shutdown();
    }
}
