//! Cluster assembly: one [`Partition`] per shared-nothing partition leader,
//! plus the simulated network, control bus and group-commit scheme shared by
//! all of them.

use crate::commit::{build_atomic_commit, AtomicCommit};
use parking_lot::Mutex;
use primo_common::config::ClusterConfig;
use primo_common::{Histogram, PartitionId, Ts, TxnId};
use primo_net::{DelayedBus, SimNetwork};
use primo_recovery::{
    compensate_survivors, CheckpointStats, Checkpointer, CrashContext, RecoveryManager,
    RecoveryReport,
};
use primo_storage::PartitionStore;
use primo_trace::{FlightRecorder, TraceEventKind};
use primo_wal::{build_group_commit, GroupCommit, ReplicatedLog};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shared-nothing partition (leader).
#[derive(Debug)]
pub struct Partition {
    pub id: PartitionId,
    pub store: PartitionStore,
    /// The partition's replicated durable log: a quorum of replicas is the
    /// unit of durability, not any single copy.
    pub log: Arc<ReplicatedLog>,
    /// Local transaction counter for TID assignment (§4.1).
    next_seq: AtomicU64,
    /// Extra per-transaction execution delay, microseconds. Simulates a slow
    /// partition ("masked cores", Fig 13b).
    slowdown_us: AtomicU64,
}

impl Partition {
    fn new(id: PartitionId, log: Arc<ReplicatedLog>, max_versions: usize) -> Self {
        Partition {
            id,
            store: PartitionStore::with_max_versions(id, max_versions),
            log,
            next_seq: AtomicU64::new(1),
            slowdown_us: AtomicU64::new(0),
        }
    }

    /// Assign a globally unique TID coordinated by this partition.
    pub fn next_txn_id(&self, global_seq: &AtomicU64) -> TxnId {
        // The sequence component is global so that WAIT_DIE priorities are
        // comparable across coordinators (older == smaller everywhere).
        let seq = global_seq.fetch_add(1, Ordering::Relaxed);
        let _ = self.next_seq.fetch_add(1, Ordering::Relaxed);
        TxnId::new(self.id, seq)
    }

    pub fn set_slowdown_us(&self, us: u64) {
        self.slowdown_us.store(us, Ordering::Relaxed);
    }

    pub fn slowdown_us(&self) -> u64 {
        self.slowdown_us.load(Ordering::Relaxed)
    }

    /// Number of transactions this partition has coordinated.
    pub fn coordinated_txns(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }
}

/// The whole simulated cluster.
pub struct Cluster {
    pub config: ClusterConfig,
    pub partitions: Vec<Arc<Partition>>,
    pub net: Arc<SimNetwork>,
    pub bus: Arc<DelayedBus>,
    pub group_commit: Arc<dyn GroupCommit>,
    /// The cluster flight recorder: every layer (workers, commit paths, the
    /// replicated logs, group-commit agents, recovery) emits its trace
    /// events here. Always present; recording itself is gated by
    /// `config.trace.enabled`.
    pub recorder: Arc<FlightRecorder>,
    /// The distributed atomic-commit protocol every prepare/decide path runs
    /// through (classic blocking 2PC or non-blocking Paxos Commit, per
    /// `config.commit_mode`).
    atomic_commit: Arc<dyn AtomicCommit>,
    /// One-shot coordinator-crash injection: `partition.0 + 1` when armed
    /// for that partition, 0 when disarmed. The next distributed prepare
    /// coordinated by the armed partition consumes it and "dies" between
    /// the vote round and the decision.
    coordinator_crash: AtomicU64,
    /// Transactions orphaned by a coordinator crash under classic 2PC
    /// (their locks leak; the participants block).
    orphaned_txns: AtomicU64,
    /// In-doubt transactions terminated from the durable vote set (live
    /// Paxos Commit resolution plus recovery-time sealing).
    in_doubt_resolved: AtomicU64,
    /// Prepare→decide latency of distributed commits, microseconds.
    commit_decide_us: Histogram,
    /// Global transaction sequence (see [`Partition::next_txn_id`]).
    global_seq: AtomicU64,
    /// Crash-time state of currently-crashed partitions, captured by
    /// [`Cluster::crash_partition`] and consumed by
    /// [`Cluster::recover_partition`].
    pending_crashes: Mutex<HashMap<u32, CrashContext>>,
    /// Total crash-rolled-back transactions whose surviving-partition
    /// residue was compensated (see [`Cluster::crash_partition`]).
    compensated_txns: AtomicU64,
    /// Superseded record versions garbage-collected at checkpoints (the
    /// version-chain GC piggybacks on [`Cluster::checkpoint_partition`]).
    pruned_versions: AtomicU64,
    /// Batched remote-read fan-outs issued (one per resolved non-empty
    /// [`Footprint`](crate::prefetch::Footprint)).
    prefetch_fanouts: AtomicU64,
    /// Remote reads served from a prefetch buffer (no round trip charged).
    prefetch_hits: AtomicU64,
    /// Remote reads whose prefetched record moved underneath the buffer
    /// (fell back to a fresh round trip).
    prefetch_stale: AtomicU64,
    /// Remote reads with no prefetch entry (unplanned keys, or batching
    /// off) — the sequential path.
    prefetch_misses: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.partitions.len())
            .field("group_commit", &self.group_commit.label())
            .finish()
    }
}

impl Cluster {
    /// Build a cluster from a configuration: partitions, network, control
    /// bus and the configured group-commit scheme.
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        let n = config.num_partitions;
        let net = Arc::new(SimNetwork::new(n, config.net, config.seed));
        // Control messages (watermarks / epochs) travel one-way over the bus;
        // give them the same base latency as a data message.
        let bus = DelayedBus::new(n, config.net.one_way_us + config.net.control_msg_extra_us);
        // The replicated durable logs exist before the group-commit scheme:
        // watermark agents log their published `Wp` and COCO seals epoch
        // boundaries into them, which is what bounds recovery replay. Each
        // non-leader replica pays the one-way network hop on top of its own
        // persist delay, so replication cost shows up in quorum-ack latency
        // (and the fan-out messages are accounted on the network).
        let logs: Vec<Arc<ReplicatedLog>> = (0..n)
            .map(|p| {
                Arc::new(ReplicatedLog::new(
                    PartitionId(p as u32),
                    config.wal,
                    config.net.one_way_us,
                    Some(Arc::clone(&net)),
                ))
            })
            .collect();
        let group_commit = build_group_commit(n, config.wal, Arc::clone(&bus), logs.clone());
        // Wire the flight recorder into every layer before any transaction
        // traffic: the logs (sequencer waits, quorum acks, leader changes)
        // and the scheme's background agents (watermark / epoch / CLV
        // decisions). Workers and recovery reach it through the cluster.
        let recorder = Arc::new(FlightRecorder::new(
            config.trace.enabled,
            config.trace.ring_capacity,
        ));
        for log in &logs {
            log.set_recorder(Arc::clone(&recorder));
        }
        group_commit.set_recorder(Arc::clone(&recorder));
        // Per-hop message events are opt-in: the network's recorder stays
        // unset unless the knob is on, so the send hot path pays nothing.
        if config.trace.trace_messages {
            net.set_recorder(Arc::clone(&recorder));
        }
        let max_versions = config.primo.max_versions;
        let partitions = logs
            .into_iter()
            .enumerate()
            .map(|(p, log)| Arc::new(Partition::new(PartitionId(p as u32), log, max_versions)))
            .collect();
        let atomic_commit = build_atomic_commit(config.commit_mode);
        Arc::new(Cluster {
            config,
            partitions,
            net,
            bus,
            group_commit,
            recorder,
            atomic_commit,
            coordinator_crash: AtomicU64::new(0),
            orphaned_txns: AtomicU64::new(0),
            in_doubt_resolved: AtomicU64::new(0),
            commit_decide_us: Histogram::new(),
            global_seq: AtomicU64::new(1),
            pending_crashes: Mutex::new(HashMap::new()),
            compensated_txns: AtomicU64::new(0),
            pruned_versions: AtomicU64::new(0),
            prefetch_fanouts: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_stale: AtomicU64::new(0),
            prefetch_misses: AtomicU64::new(0),
        })
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn partition(&self, id: PartitionId) -> &Arc<Partition> {
        &self.partitions[id.idx()]
    }

    /// Assign a new TID coordinated by `coord`.
    pub fn next_txn_id(&self, coord: PartitionId) -> TxnId {
        self.partitions[coord.idx()].next_txn_id(&self.global_seq)
    }

    /// The atomic-commit protocol this cluster runs distributed commits
    /// through (see [`AtomicCommit`]).
    pub fn atomic_commit(&self) -> &Arc<dyn AtomicCommit> {
        &self.atomic_commit
    }

    /// Arm a one-shot coordinator crash: the next distributed prepare
    /// coordinated by `p` dies between its vote round and the decision.
    /// Unlike [`Cluster::crash_partition`] this fells a single worker's
    /// transaction, not the partition — the partition keeps serving, but
    /// nobody is left to finish that transaction's commit protocol.
    pub fn arm_coordinator_crash(&self, p: PartitionId) {
        self.coordinator_crash
            .store(u64::from(p.0) + 1, Ordering::SeqCst);
    }

    /// Consume an armed coordinator crash for coordinator `p`. Returns true
    /// at most once per arming (the commit layer calls this at its
    /// injection point).
    pub fn take_coordinator_crash(&self, p: PartitionId) -> bool {
        self.coordinator_crash
            .compare_exchange(u64::from(p.0) + 1, 0, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    }

    /// Whether a coordinator crash is still armed (i.e. no distributed
    /// prepare has consumed it yet).
    pub fn coordinator_crash_armed(&self) -> bool {
        self.coordinator_crash.load(Ordering::SeqCst) != 0
    }

    /// Account one transaction orphaned by a coordinator crash under
    /// classic 2PC.
    pub fn note_orphaned_txn(&self) {
        self.orphaned_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Transactions orphaned by coordinator crashes (blocked forever —
    /// classic 2PC's failure mode; always 0 under Paxos Commit).
    pub fn orphaned_txns(&self) -> u64 {
        self.orphaned_txns.load(Ordering::Relaxed)
    }

    /// Account one in-doubt transaction terminated from the durable vote
    /// set (live resolution or recovery-time sealing).
    pub fn note_in_doubt_resolved(&self) {
        self.in_doubt_resolved.fetch_add(1, Ordering::Relaxed);
    }

    /// In-doubt transactions resolved so far (reported as
    /// `in_doubt_resolved` in
    /// [`MetricsSnapshot`](primo_common::MetricsSnapshot)).
    pub fn in_doubt_resolved(&self) -> u64 {
        self.in_doubt_resolved.load(Ordering::Relaxed)
    }

    /// Account one batched remote-read fan-out.
    pub fn note_prefetch_fanout(&self) {
        self.prefetch_fanouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Batched remote-read fan-outs issued so far.
    pub fn prefetch_fanouts(&self) -> u64 {
        self.prefetch_fanouts.load(Ordering::Relaxed)
    }

    /// Account one remote read served from a prefetch buffer.
    pub fn note_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Remote reads served from prefetch buffers so far.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Account one stale prefetch (entry present, record moved).
    pub fn note_prefetch_stale(&self) {
        self.prefetch_stale.fetch_add(1, Ordering::Relaxed);
    }

    /// Stale prefetches so far.
    pub fn prefetch_stale(&self) -> u64 {
        self.prefetch_stale.load(Ordering::Relaxed)
    }

    /// Account one remote read without a prefetch entry.
    pub fn note_prefetch_miss(&self) {
        self.prefetch_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Prefetch-less remote reads so far.
    pub fn prefetch_misses(&self) -> u64 {
        self.prefetch_misses.load(Ordering::Relaxed)
    }

    /// Fraction of remote reads served from a prefetch buffer (reported as
    /// `prefetch_hit_rate` in
    /// [`MetricsSnapshot`](primo_common::MetricsSnapshot); 0 when no remote
    /// read ran).
    pub fn prefetch_hit_rate(&self) -> f64 {
        let hits = self.prefetch_hits();
        let total = hits + self.prefetch_stale() + self.prefetch_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Record one distributed commit's prepare→decide latency.
    pub fn record_commit_decision(&self, us: u64) {
        self.commit_decide_us.record_us(us);
    }

    /// Number of distributed commit decisions whose latency was recorded.
    pub fn commit_decisions(&self) -> u64 {
        self.commit_decide_us.count()
    }

    /// Mean prepare→decide latency of distributed commits, microseconds.
    pub fn commit_decide_mean_us(&self) -> f64 {
        self.commit_decide_us.mean_us()
    }

    /// p99 prepare→decide latency of distributed commits, microseconds.
    pub fn commit_decide_p99_us(&self) -> u64 {
        self.commit_decide_us.percentile_us(0.99)
    }

    /// All partition ids.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        (0..self.partitions.len())
            .map(|p| PartitionId(p as u32))
            .collect()
    }

    /// Crash a partition leader: the partition becomes unreachable, the
    /// group commit agrees on the rollback point (§5.2), the replicated log
    /// hands leadership to the deterministic successor replica, and the
    /// crash-time **quorum** LSN is captured — entries that never reached a
    /// majority of replicas are treated as lost.
    ///
    /// Atomic commit demands all-or-nothing across every participant, so the
    /// crash-abort is then made atomic across partitions: every *surviving*
    /// partition undoes the installed writes of the transactions the
    /// agreement rolled back (restoring the before-images logged with each
    /// write-set) and seals them with `TxnRolledBack` markers — the crashed
    /// partition itself converges through bounded replay during recovery.
    /// Returns the agreed token (watermark / epoch).
    pub fn crash_partition(&self, p: PartitionId) -> Ts {
        self.crash_partition_impl(p, false)
    }

    /// [`Cluster::crash_partition`], but the dead leader's **local log
    /// replica is discarded too** (disk loss, not just memory loss). With a
    /// replication factor above one, the surviving quorum still reproduces
    /// every acknowledged transaction; with a single-copy log the history is
    /// honestly gone and recovery rebuilds an empty store.
    pub fn crash_partition_discarding_log(&self, p: PartitionId) -> Ts {
        self.crash_partition_impl(p, true)
    }

    fn crash_partition_impl(&self, p: PartitionId, discard_log: bool) -> Ts {
        self.recorder
            .emit(None, Some(p), TraceEventKind::CrashInjected);
        self.net.set_crashed(p, true);
        let token = self.group_commit.on_partition_crash(p);
        // Capture the quorum horizon **before** the hand-off wipes the dead
        // leader's disk: everything quorum-durable at the crash instant is
        // physically present on every replica (the capture itself drains
        // the append pipeline's staging ring, and the fail-over flushes
        // whatever is sequenced after that), so the surviving copies can
        // reproduce it — whereas capturing after
        // the wipe would drop the dead leader's vote and, at replication
        // factor 2, misreport fully-acknowledged history as lost. The
        // fail-over then bumps the term (restarting any in-flight replay)
        // and elects the successor the recovery will read from.
        let crash = CrashContext::capture(p, token, &self.partition(p).log);
        self.partition(p).log.fail_over(discard_log);
        self.pending_crashes.lock().insert(p.0, crash);
        let survivors = self
            .partitions
            .iter()
            .filter(|q| q.id != p && !self.net.is_crashed(q.id))
            .map(|q| (q.id, &q.store, q.log.as_ref()));
        let compensated = compensate_survivors(
            survivors,
            self.group_commit.as_ref(),
            token,
            Some(&self.recorder),
        );
        self.compensated_txns
            .fetch_add(compensated as u64, Ordering::Relaxed);
        // Every rolled-back version is purged from the survivors' chains:
        // the snapshot horizon no longer needs to stay capped below the
        // agreement.
        self.group_commit.on_compensation_complete();
        token
    }

    /// Crash only the *replacement leader* of a partition that is already
    /// down or mid-recovery: leadership hands off to the next deterministic
    /// successor replica (no new cluster agreement is needed — the
    /// partition was not serving). An in-flight recovery notices the term
    /// bump and restarts its replay against the new leader's log copy.
    pub fn crash_replacement_leader(&self, p: PartitionId, discard_log: bool) -> usize {
        self.partition(p).log.fail_over(discard_log)
    }

    /// Total crash-rolled-back transactions compensated on surviving
    /// partitions so far (reported as `compensated_txns` in
    /// [`MetricsSnapshot`](primo_common::MetricsSnapshot)).
    pub fn compensated_txns(&self) -> u64 {
        self.compensated_txns.load(Ordering::Relaxed)
    }

    /// Total leader hand-offs across all partitions' replicated logs
    /// (reported as `leader_changes` in
    /// [`MetricsSnapshot`](primo_common::MetricsSnapshot)).
    pub fn leader_changes(&self) -> u64 {
        self.partitions.iter().map(|p| p.log.leader_changes()).sum()
    }

    /// Replication lag: the worst partition's quorum-ack delay — the time
    /// between appending a log record and its quorum acknowledgement
    /// (reported as `replication_lag_us`; equals the local persist delay
    /// when the log is single-copy).
    pub fn replication_lag_us(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.log.quorum_ack_delay_us())
            .max()
            .unwrap_or(0)
    }

    /// Total microseconds committers spent blocked on a partition's log
    /// sequencer — stage-1 contention on the append pipeline's commit
    /// critical section (reported as `wal_append_wait_us` in
    /// [`MetricsSnapshot`](primo_common::MetricsSnapshot)).
    pub fn wal_append_wait_us(&self) -> u64 {
        self.partitions.iter().map(|p| p.log.append_wait_us()).sum()
    }

    /// Mean entries per replication-pump batch across all partitions —
    /// stage-2 amortization of the append pipeline (reported as
    /// `replication_batch_len`; 0 when nothing was replicated, e.g. at
    /// replication factor 1).
    pub fn replication_batch_len(&self) -> f64 {
        let (entries, batches) = self.partitions.iter().fold((0u64, 0u64), |(e, b), p| {
            (
                e + p.log.replicated_entries(),
                b + p.log.replication_batches(),
            )
        });
        if batches == 0 {
            0.0
        } else {
            entries as f64 / batches as f64
        }
    }

    /// Recover a crashed partition for real: wipe its store and rebuild it
    /// from the latest durable checkpoint plus bounded durable-log replay
    /// (see [`RecoveryManager`]). The partition stays unreachable until the
    /// replay finishes. Returns `None` (and just clears the crash flag) if
    /// the partition was never crashed through
    /// [`Cluster::crash_partition`].
    pub fn recover_partition(&self, p: PartitionId) -> Option<RecoveryReport> {
        self.recover_partition_with_fault(p, &mut || {})
    }

    /// [`Cluster::recover_partition`] with a fault-injection hook invoked
    /// mid-replay (after each replay pass, before the leadership-term
    /// check). Tests use it to crash the replacement leader at a
    /// deterministic point and pin the hand-off to the successor replica.
    pub fn recover_partition_with_fault(
        &self,
        p: PartitionId,
        mid_replay: &mut dyn FnMut(),
    ) -> Option<RecoveryReport> {
        let Some(crash) = self.pending_crashes.lock().remove(&p.0) else {
            self.net.set_crashed(p, false);
            return None;
        };
        let partition = self.partition(p);
        let report = RecoveryManager::recover_with_fault(
            &partition.store,
            &partition.log,
            self.group_commit.as_ref(),
            &self.net,
            &crash,
            Some(&self.recorder),
            mid_replay,
        );
        self.in_doubt_resolved
            .fetch_add(report.in_doubt_resolved as u64, Ordering::Relaxed);
        Some(report)
    }

    /// Checkpoint one partition: the base image (quiescent store scan) if
    /// none exists yet, otherwise a log-fold checkpoint bounded by the
    /// group-commit scheme, followed by truncation of what the newest
    /// durable checkpoint covers.
    ///
    /// Returns `None` for a crashed or recovering partition: a dead leader
    /// cannot checkpoint, and — more subtly — a post-crash checkpoint would
    /// fold the crash-volatile log tail and then truncate entries that the
    /// eventual recovery (which is pinned to the crash-time durable LSN)
    /// still needs.
    pub fn checkpoint_partition(&self, p: PartitionId) -> Option<CheckpointStats> {
        if self.net.is_crashed(p) {
            return None;
        }
        let partition = self.partition(p);
        let stats = if partition.log.latest_checkpoint().is_none() {
            Checkpointer::initial(&partition.store, &partition.log)
        } else {
            Checkpointer::tick(p, &partition.log, self.group_commit.as_ref())
                .expect("base checkpoint exists")
        };
        // Version-chain GC piggybacks on the checkpoint pass: history
        // versions shadowed at or below the current snapshot horizon can no
        // longer be requested (the published horizon is monotone), so they
        // are reclaimed here rather than by a dedicated vacuum thread.
        let bound = self.group_commit.snapshot_horizon(p);
        let pruned = partition.store.prune_versions(bound);
        self.pruned_versions
            .fetch_add(pruned as u64, Ordering::Relaxed);
        Some(stats)
    }

    /// Total superseded record versions reclaimed by checkpoint-time GC
    /// (reported as `pruned_versions` in
    /// [`MetricsSnapshot`](primo_common::MetricsSnapshot)).
    pub fn pruned_versions(&self) -> u64 {
        self.pruned_versions.load(Ordering::Relaxed)
    }

    /// The cluster-wide MVCC snapshot timestamp: the minimum of every
    /// partition's group-commit horizon. A read-only transaction resolved at
    /// this horizon observes only durable, never-to-be-rolled-back state on
    /// every partition it touches (see
    /// [`GroupCommit::snapshot_horizon`] for the per-scheme rules).
    pub fn snapshot_horizon(&self) -> Ts {
        self.partition_ids()
            .into_iter()
            .map(|p| self.group_commit.snapshot_horizon(p))
            .min()
            .unwrap_or(0)
    }

    /// Checkpoint every healthy partition (the experiment driver runs this
    /// after loading and then periodically).
    pub fn checkpoint_all(&self) -> Vec<CheckpointStats> {
        self.partition_ids()
            .into_iter()
            .filter_map(|p| self.checkpoint_partition(p))
            .collect()
    }

    /// Partitions currently crashed (used by the experiment teardown to
    /// guarantee no partition is left permanently down).
    pub fn crashed_partitions(&self) -> Vec<PartitionId> {
        self.partition_ids()
            .into_iter()
            .filter(|p| self.net.is_crashed(*p))
            .collect()
    }

    /// Stop background threads (group commit agents, bus pump).
    pub fn shutdown(&self) {
        self.group_commit.shutdown();
        self.bus.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::{TableId, Value};

    #[test]
    fn cluster_builds_with_partitions_and_gc() {
        let cluster = Cluster::new(ClusterConfig::for_tests(3));
        assert_eq!(cluster.num_partitions(), 3);
        assert_eq!(cluster.partition_ids().len(), 3);
        assert_eq!(cluster.group_commit.label(), "Watermark");
        cluster.shutdown();
    }

    #[test]
    fn txn_ids_are_unique_and_ordered_globally() {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        let a = cluster.next_txn_id(PartitionId(0));
        let b = cluster.next_txn_id(PartitionId(1));
        let c = cluster.next_txn_id(PartitionId(0));
        assert!(a < b && b < c);
        assert_eq!(cluster.partition(PartitionId(0)).coordinated_txns(), 2);
        cluster.shutdown();
    }

    #[test]
    fn crash_and_real_recovery_round_trip() {
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        let p = PartitionId(1);
        for k in 0..8u64 {
            cluster
                .partition(p)
                .store
                .insert(TableId(0), k, Value::from_u64(k));
        }
        cluster.checkpoint_all();
        // Let the checkpoint pass its persist delay: a crash before that
        // genuinely loses it (nothing durable -> nothing restorable).
        std::thread::sleep(std::time::Duration::from_millis(5));
        cluster.crash_partition(p);
        assert!(cluster.net.is_crashed(p));
        assert_eq!(cluster.crashed_partitions(), vec![p]);
        let report = cluster.recover_partition(p).expect("real recovery ran");
        assert_eq!(report.wiped_records, 8);
        assert_eq!(report.restored_records, 8);
        assert!(!cluster.net.is_crashed(p));
        assert_eq!(
            cluster
                .partition(p)
                .store
                .get(TableId(0), 3)
                .unwrap()
                .read()
                .value
                .as_u64(),
            3
        );
        // Recovering a partition that never crashed just clears the flag.
        assert!(cluster.recover_partition(PartitionId(0)).is_none());
        cluster.shutdown();
    }

    #[test]
    fn checkpoints_fold_and_truncate_the_log() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let p = PartitionId(0);
        cluster
            .partition(p)
            .store
            .insert(TableId(0), 1, Value::from_u64(1));
        let first = cluster.checkpoint_partition(p).expect("healthy partition");
        assert_eq!(first.image_records, 1);
        // A second pass goes through the log-fold path.
        std::thread::sleep(std::time::Duration::from_millis(60));
        let second = cluster.checkpoint_partition(p).expect("healthy partition");
        assert_eq!(second.image_records, 1);
        // A crashed (or recovering) partition is never checkpointed: a
        // post-crash fold could truncate entries its recovery still needs.
        cluster.crash_partition(p);
        assert!(cluster.checkpoint_partition(p).is_none());
        assert!(cluster.checkpoint_all().is_empty());
        cluster.recover_partition(p);
        assert!(cluster.checkpoint_partition(p).is_some());
        cluster.shutdown();
    }

    #[test]
    fn partition_store_is_usable() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let p = cluster.partition(PartitionId(0));
        p.store.insert(TableId(0), 5, Value::from_u64(9));
        assert_eq!(p.store.get(TableId(0), 5).unwrap().read().value.as_u64(), 9);
        p.set_slowdown_us(100);
        assert_eq!(p.slowdown_us(), 100);
        cluster.shutdown();
    }
}
