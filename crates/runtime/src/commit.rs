//! The unified atomic-commit layer: every protocol's distributed
//! prepare/decide path runs behind one [`AtomicCommit`] trait instead of
//! hand-rolled round-trip calls scattered across the protocol crates.
//!
//! Two implementations ship:
//!
//! * [`ClassicTwoPc`] — the blocking textbook protocol every baseline (and
//!   Primo's read-heavy fallback) used before this layer existed. Message
//!   counts and trace events are byte-for-byte what the inlined paths
//!   charged, so it doubles as the ablation baseline.
//! * [`PaxosCommit`] — Gray & Lamport's non-blocking variant: prepare votes
//!   are logged as quorum-durable entries in each participant's replicated
//!   log, so when the coordinating worker dies between the vote round and
//!   the decision, *any* participant replica can assemble the global verdict
//!   from the durable vote set (presumed abort: no durable decision means
//!   abort). The decision itself needs no acknowledgement round trip — it is
//!   quorum-durable in the log, and a participant that misses the one-way
//!   notification recovers it from there.
//!
//! The coordinator-crash injection point lives here too: the cluster arms a
//! one-shot crash for a coordinating partition, and the next distributed
//! prepare that partition coordinates "dies" after its vote round — under
//! [`ClassicTwoPc`] the transaction is orphaned (its locks leak, the
//! participants block), under [`PaxosCommit`] it is resolved in-doubt and
//! terminates like any other abort.

use crate::cluster::Cluster;
use primo_common::config::CommitMode;
use primo_common::{AbortReason, PartitionId, TxnId};
use primo_trace::TraceEventKind;
use primo_wal::LogPayload;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Proof that the prepare phase succeeded, carrying the instant it completed
/// so the decide phase can report the prepare→decide latency.
#[derive(Debug, Clone, Copy)]
pub struct PreparedAt(Instant);

impl PreparedAt {
    fn now() -> Self {
        PreparedAt(Instant::now())
    }

    /// Microseconds since the prepare phase completed.
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros() as u64
    }
}

/// Result of the prepare phase of an atomic commit.
#[derive(Debug)]
pub enum PrepareOutcome {
    /// Every participant voted YES; the caller may proceed to its decision.
    Prepared(PreparedAt),
    /// The transaction must abort for `AbortReason`. The caller runs its
    /// normal abort path (releasing locks, notifying participants).
    Aborted(AbortReason),
    /// The coordinating worker died between the vote round and the decision
    /// and nobody can finish the protocol (classic 2PC's blocking failure):
    /// the caller must abandon the transaction **without any cleanup** —
    /// its locks stay held and the participants stay blocked.
    Orphaned,
}

/// One distributed atomic-commit protocol: a prepare phase that collects
/// votes and two decide phases that propagate the global verdict.
///
/// Participant *registration* (group-commit bookkeeping) stays at the call
/// sites — the baselines register inside their shared prepare helper, Primo
/// during execution — because it is scheme bookkeeping, not commit protocol.
pub trait AtomicCommit: Send + Sync + std::fmt::Debug {
    /// Short name for figures and logs.
    fn label(&self) -> &'static str;

    /// The configuration knob this implementation answers to.
    fn mode(&self) -> CommitMode;

    /// Run the vote round against `participants` (already excluding `home`).
    /// An empty participant list is a no-op success so callers can invoke
    /// this unconditionally.
    fn prepare(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
    ) -> PrepareOutcome;

    /// Propagate the global COMMIT verdict.
    fn decide_commit(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
        prepared: PreparedAt,
    );

    /// Propagate the global ABORT verdict (after a failed local lock /
    /// validation step that followed a successful prepare).
    fn decide_abort(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
    );

    /// Seal a commit verdict that was decided *inside* the prepare round
    /// itself (consolidated-round protocols like TAPIR fold validation and
    /// decision into one round trip). No messages are charged. Classic 2PC
    /// needs nothing — the prepare response already was the decision — so
    /// the default is a no-op; Paxos Commit overrides it to resolve its
    /// logged votes with durable decision entries.
    fn seal_commit(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
        prepared: PreparedAt,
    ) {
        let _ = (cluster, txn, home, participants, prepared);
    }
}

/// Construct the commit layer for a configuration knob.
pub fn build_atomic_commit(mode: CommitMode) -> Arc<dyn AtomicCommit> {
    match mode {
        CommitMode::TwoPc => Arc::new(ClassicTwoPc),
        CommitMode::PaxosCommit => Arc::new(PaxosCommit),
    }
}

/// Textbook blocking two-phase commit: one prepare round trip, one commit
/// round trip (locks are held across both), one-way abort notifications.
/// Exactly the messages and traces the protocol crates charged before the
/// commit layer was extracted — the ablation baseline.
#[derive(Debug)]
pub struct ClassicTwoPc;

impl AtomicCommit for ClassicTwoPc {
    fn label(&self) -> &'static str {
        "2PC"
    }

    fn mode(&self) -> CommitMode {
        CommitMode::TwoPc
    }

    fn prepare(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
    ) -> PrepareOutcome {
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::Prepare {
                participants: participants.len() as u32,
            },
        );
        let ok = participants.is_empty() || cluster.net.round_trip_multi(home, participants);
        cluster
            .recorder
            .emit(Some(txn), Some(home), TraceEventKind::Vote { ok });
        if !ok {
            return PrepareOutcome::Aborted(AbortReason::RemoteUnavailable);
        }
        if !participants.is_empty() && cluster.take_coordinator_crash(home) {
            // The coordinator died holding everyone's YES votes. Nothing is
            // durably recorded about this transaction's outcome, so no one
            // else can decide: the participants block until the coordinator
            // "comes back" — which in this simulation it never does.
            cluster
                .recorder
                .emit(Some(txn), Some(home), TraceEventKind::CoordinatorCrashed);
            cluster.note_orphaned_txn();
            return PrepareOutcome::Orphaned;
        }
        PrepareOutcome::Prepared(PreparedAt::now())
    }

    fn decide_commit(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
        prepared: PreparedAt,
    ) {
        if participants.is_empty() {
            return;
        }
        cluster.net.round_trip_multi(home, participants);
        cluster
            .net
            .note_commit_messages(2 * participants.len() as u64);
        cluster.record_commit_decision(prepared.elapsed_us());
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::DecisionReached {
                commit: true,
                in_doubt: false,
            },
        );
    }

    fn decide_abort(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
    ) {
        if participants.is_empty() {
            return;
        }
        cluster.net.one_way_multi(home, participants);
        cluster.net.note_commit_messages(participants.len() as u64);
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::DecisionReached {
                commit: false,
                in_doubt: false,
            },
        );
    }
}

/// Non-blocking Paxos Commit over the replicated logs: YES votes are logged
/// as quorum-durable [`LogPayload::CommitVote`] entries (the vote rides the
/// prepare round already charged — logging it is local to the replica that
/// received the prepare), and the decision is a quorum-durable
/// [`LogPayload::CommitDecision`] entry propagated with a one-way
/// notification instead of an acknowledged round trip.
#[derive(Debug)]
pub struct PaxosCommit;

impl PaxosCommit {
    /// Finish the protocol of a transaction whose coordinator died after the
    /// vote round. Any participant replica can do this from durable state:
    /// wait for the votes to reach quorum durability, look for a durable
    /// decision, and — there being none (the crash fired before the decide
    /// step, and the vote set alone never commits) — seal the presumed-abort
    /// verdict into every involved log so every future reader agrees.
    fn resolve_in_doubt(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
        vote_lsns: &[(PartitionId, u64)],
    ) -> PrepareOutcome {
        for (p, lsn) in vote_lsns {
            let log = &cluster.partition(*p).log;
            let deadline = Instant::now()
                + Duration::from_micros(4 * log.quorum_ack_delay_us().max(1_000) + 10_000);
            while !log.is_durable(*lsn) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(200));
            }
            if log.is_durable(*lsn) {
                cluster.recorder.emit(
                    Some(txn),
                    Some(*p),
                    TraceEventKind::VoteQuorumDurable { lsn: *lsn },
                );
            }
        }
        for p in std::iter::once(home).chain(participants.iter().copied()) {
            let log = &cluster.partition(p).log;
            log.append(LogPayload::CommitDecision { txn, commit: false });
            cluster
                .net
                .note_commit_messages(log.replication_factor() as u64 - 1);
        }
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::DecisionReached {
                commit: false,
                in_doubt: true,
            },
        );
        cluster.note_in_doubt_resolved();
        // The caller runs its normal abort path off this reason, which doubles
        // as the participant notification — consistent termination, no blocking.
        PrepareOutcome::Aborted(AbortReason::CoordinatorCrash)
    }
}

impl AtomicCommit for PaxosCommit {
    fn label(&self) -> &'static str {
        "PaxosCommit"
    }

    fn mode(&self) -> CommitMode {
        CommitMode::PaxosCommit
    }

    fn prepare(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
    ) -> PrepareOutcome {
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::Prepare {
                participants: participants.len() as u32,
            },
        );
        let ok = participants.is_empty() || cluster.net.round_trip_multi(home, participants);
        cluster
            .recorder
            .emit(Some(txn), Some(home), TraceEventKind::Vote { ok });
        if !ok {
            return PrepareOutcome::Aborted(AbortReason::RemoteUnavailable);
        }
        if participants.is_empty() {
            // A local transaction never reaches a distributed decision; don't
            // pollute the logs with single-partition vote entries.
            return PrepareOutcome::Prepared(PreparedAt::now());
        }
        // Log every YES vote quorum-durably: the coordinator's own vote in
        // the home log, each participant's vote in its own log. Durability
        // proceeds in the background through the append pipeline — the
        // commit critical path pays only the appends.
        let mut vote_lsns = Vec::with_capacity(participants.len() + 1);
        for p in std::iter::once(home).chain(participants.iter().copied()) {
            let log = &cluster.partition(p).log;
            let lsn = log.append(LogPayload::CommitVote {
                txn,
                coordinator: home,
                commit: true,
            });
            cluster
                .net
                .note_commit_messages(log.replication_factor() as u64 - 1);
            cluster.recorder.emit(
                Some(txn),
                Some(p),
                TraceEventKind::VoteLogged { lsn, commit: true },
            );
            vote_lsns.push((p, lsn));
        }
        if cluster.take_coordinator_crash(home) {
            cluster
                .recorder
                .emit(Some(txn), Some(home), TraceEventKind::CoordinatorCrashed);
            return self.resolve_in_doubt(cluster, txn, home, participants, &vote_lsns);
        }
        PrepareOutcome::Prepared(PreparedAt::now())
    }

    fn decide_commit(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
        prepared: PreparedAt,
    ) {
        if participants.is_empty() {
            return;
        }
        // The verdict is the durable log entry, not the message: participants
        // are told one-way and never ack (a missed notification is recovered
        // from the durable decision). This removes classic 2PC's second
        // round trip from the commit critical path.
        for p in std::iter::once(home).chain(participants.iter().copied()) {
            let log = &cluster.partition(p).log;
            log.append(LogPayload::CommitDecision { txn, commit: true });
            cluster
                .net
                .note_commit_messages(log.replication_factor() as u64 - 1);
        }
        cluster.net.one_way_multi(home, participants);
        cluster.net.note_commit_messages(participants.len() as u64);
        cluster.record_commit_decision(prepared.elapsed_us());
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::DecisionReached {
                commit: true,
                in_doubt: false,
            },
        );
    }

    fn decide_abort(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
    ) {
        if participants.is_empty() {
            return;
        }
        for p in std::iter::once(home).chain(participants.iter().copied()) {
            let log = &cluster.partition(p).log;
            log.append(LogPayload::CommitDecision { txn, commit: false });
            cluster
                .net
                .note_commit_messages(log.replication_factor() as u64 - 1);
        }
        cluster.net.one_way_multi(home, participants);
        cluster.net.note_commit_messages(participants.len() as u64);
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::DecisionReached {
                commit: false,
                in_doubt: false,
            },
        );
    }

    fn seal_commit(
        &self,
        cluster: &Cluster,
        txn: TxnId,
        home: PartitionId,
        participants: &[PartitionId],
        prepared: PreparedAt,
    ) {
        if participants.is_empty() {
            return;
        }
        // The prepare round's response already carried the decision; only
        // the durable resolution of the logged votes remains.
        for p in std::iter::once(home).chain(participants.iter().copied()) {
            let log = &cluster.partition(p).log;
            log.append(LogPayload::CommitDecision { txn, commit: true });
            cluster
                .net
                .note_commit_messages(log.replication_factor() as u64 - 1);
        }
        cluster.record_commit_decision(prepared.elapsed_us());
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::DecisionReached {
                commit: true,
                in_doubt: false,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;

    fn cluster_with_mode(mode: CommitMode, partitions: usize) -> Arc<Cluster> {
        let mut config = ClusterConfig::for_tests(partitions);
        config.commit_mode = mode;
        Cluster::new(config)
    }

    #[test]
    fn build_respects_the_mode_knob() {
        assert_eq!(build_atomic_commit(CommitMode::TwoPc).label(), "2PC");
        assert_eq!(
            build_atomic_commit(CommitMode::PaxosCommit).label(),
            "PaxosCommit"
        );
        assert_eq!(
            build_atomic_commit(CommitMode::PaxosCommit).mode(),
            CommitMode::PaxosCommit
        );
    }

    #[test]
    fn classic_prepare_and_commit_charge_two_round_trips() {
        let cluster = cluster_with_mode(CommitMode::TwoPc, 3);
        let txn = cluster.next_txn_id(PartitionId(0));
        let parts = [PartitionId(1), PartitionId(2)];
        let before = cluster.net.round_trips_charged();
        let prepared = match cluster
            .atomic_commit()
            .prepare(&cluster, txn, PartitionId(0), &parts)
        {
            PrepareOutcome::Prepared(at) => at,
            other => panic!("prepare must succeed, got {other:?}"),
        };
        cluster
            .atomic_commit()
            .decide_commit(&cluster, txn, PartitionId(0), &parts, prepared);
        assert_eq!(cluster.net.round_trips_charged() - before, 2);
        assert_eq!(cluster.commit_decisions(), 1);
        assert!(
            cluster
                .partition(PartitionId(0))
                .log
                .commit_decision_for(txn, None)
                .is_none(),
            "classic 2PC logs no decision entries"
        );
        cluster.shutdown();
    }

    #[test]
    fn paxos_commit_replaces_the_second_round_trip_with_durable_entries() {
        let cluster = cluster_with_mode(CommitMode::PaxosCommit, 3);
        let txn = cluster.next_txn_id(PartitionId(0));
        let parts = [PartitionId(1), PartitionId(2)];
        let before = cluster.net.round_trips_charged();
        let prepared = match cluster
            .atomic_commit()
            .prepare(&cluster, txn, PartitionId(0), &parts)
        {
            PrepareOutcome::Prepared(at) => at,
            other => panic!("prepare must succeed, got {other:?}"),
        };
        cluster
            .atomic_commit()
            .decide_commit(&cluster, txn, PartitionId(0), &parts, prepared);
        assert_eq!(
            cluster.net.round_trips_charged() - before,
            1,
            "only the prepare round blocks; the decision is one-way"
        );
        // Votes and the decision are in every involved partition's log.
        std::thread::sleep(Duration::from_millis(5));
        for p in [PartitionId(0), PartitionId(1), PartitionId(2)] {
            let log = &cluster.partition(p).log;
            assert_eq!(log.commit_vote_for(txn, None), Some(true), "vote at {p:?}");
            assert_eq!(
                log.commit_decision_for(txn, None),
                Some(true),
                "decision at {p:?}"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn classic_coordinator_crash_orphans_the_transaction() {
        let cluster = cluster_with_mode(CommitMode::TwoPc, 2);
        let txn = cluster.next_txn_id(PartitionId(0));
        cluster.arm_coordinator_crash(PartitionId(0));
        let outcome =
            cluster
                .atomic_commit()
                .prepare(&cluster, txn, PartitionId(0), &[PartitionId(1)]);
        assert!(matches!(outcome, PrepareOutcome::Orphaned), "{outcome:?}");
        assert_eq!(cluster.orphaned_txns(), 1);
        // The injection is one-shot: the next prepare sails through.
        let txn2 = cluster.next_txn_id(PartitionId(0));
        let outcome =
            cluster
                .atomic_commit()
                .prepare(&cluster, txn2, PartitionId(0), &[PartitionId(1)]);
        assert!(matches!(outcome, PrepareOutcome::Prepared(_)));
        cluster.shutdown();
    }

    #[test]
    fn paxos_coordinator_crash_resolves_in_doubt_to_a_durable_abort() {
        let cluster = cluster_with_mode(CommitMode::PaxosCommit, 2);
        let txn = cluster.next_txn_id(PartitionId(0));
        cluster.arm_coordinator_crash(PartitionId(0));
        let outcome =
            cluster
                .atomic_commit()
                .prepare(&cluster, txn, PartitionId(0), &[PartitionId(1)]);
        match outcome {
            PrepareOutcome::Aborted(reason) => {
                assert_eq!(reason, AbortReason::CoordinatorCrash)
            }
            other => panic!("in-doubt resolution must abort cleanly, got {other:?}"),
        }
        assert_eq!(cluster.in_doubt_resolved(), 1);
        assert_eq!(cluster.orphaned_txns(), 0, "nothing blocks under Paxos");
        std::thread::sleep(Duration::from_millis(5));
        for p in [PartitionId(0), PartitionId(1)] {
            assert_eq!(
                cluster.partition(p).log.commit_decision_for(txn, None),
                Some(false),
                "the abort verdict is sealed durably at {p:?}"
            );
            assert!(
                cluster
                    .partition(p)
                    .log
                    .unresolved_commit_votes(None)
                    .is_empty(),
                "no vote stays in doubt at {p:?}"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn empty_participant_lists_are_no_ops() {
        let cluster = cluster_with_mode(CommitMode::PaxosCommit, 1);
        let txn = cluster.next_txn_id(PartitionId(0));
        let before = cluster.net.messages_sent();
        let prepared = match cluster
            .atomic_commit()
            .prepare(&cluster, txn, PartitionId(0), &[])
        {
            PrepareOutcome::Prepared(at) => at,
            other => panic!("{other:?}"),
        };
        cluster
            .atomic_commit()
            .decide_commit(&cluster, txn, PartitionId(0), &[], prepared);
        cluster
            .atomic_commit()
            .decide_abort(&cluster, txn, PartitionId(0), &[]);
        assert_eq!(cluster.net.messages_sent(), before);
        assert_eq!(cluster.commit_decisions(), 0);
        assert!(cluster.partition(PartitionId(0)).log.is_empty());
        cluster.shutdown();
    }
}
