//! The experiment driver: build a cluster, load the workload, run workers for
//! a fixed duration (with warm-up), optionally inject a partition crash, and
//! return aggregated metrics.

use crate::cluster::Cluster;
use crate::protocol::Protocol;
use crate::txn::Workload;
use crate::worker::spawn_workers;
use primo_common::config::ClusterConfig;
use primo_common::{Metrics, MetricsSnapshot, PartitionId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A scheduled partition crash (Fig 12b measures the resulting crash-abort
/// rate; §5.2 describes the recovery).
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Which partition's leader crashes.
    pub partition: PartitionId,
    /// When (after measurement starts).
    pub at: Duration,
    /// How long until a replica takes over and the partition is reachable
    /// again.
    pub recover_after: Duration,
}

/// Knobs for one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    pub warmup: Duration,
    pub duration: Duration,
    pub crash: Option<CrashPlan>,
    /// Extra one-way delay for control (watermark / epoch) messages sent by
    /// this partition — Fig 13a.
    pub lag_partition: Option<(PartitionId, u64)>,
    /// Extra per-transaction execution time on this partition — Fig 13b
    /// ("masked cores").
    pub slow_partition: Option<(PartitionId, u64)>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            warmup: Duration::from_millis(200),
            duration: Duration::from_secs(1),
            crash: None,
            lag_partition: None,
            slow_partition: None,
        }
    }
}

impl ExperimentOptions {
    pub fn quick() -> Self {
        ExperimentOptions {
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(300),
            ..Default::default()
        }
    }
}

/// Run one experiment on an existing, already-loaded cluster.
pub fn run_on_cluster(
    cluster: &Arc<Cluster>,
    protocol: Arc<dyn Protocol>,
    workload: Arc<dyn Workload>,
    options: &ExperimentOptions,
) -> MetricsSnapshot {
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    let recording = Arc::new(AtomicBool::new(false));

    if let Some((p, us)) = options.lag_partition {
        cluster.bus.set_extra_delay_from(p, us);
        cluster.net.set_extra_delay_us(p, us);
    }
    if let Some((p, us)) = options.slow_partition {
        cluster.partition(p).set_slowdown_us(us);
    }

    let handles = spawn_workers(cluster, &protocol, &workload, &metrics, &stop, &recording);

    std::thread::sleep(options.warmup);
    recording.store(true, Ordering::SeqCst);
    let started = Instant::now();

    // Crash injection runs on this driver thread so the timeline is exact.
    if let Some(crash) = options.crash {
        let remaining = options.duration;
        let to_crash = crash.at.min(remaining);
        std::thread::sleep(to_crash);
        cluster.net.set_crashed(crash.partition, true);
        cluster.group_commit.on_partition_crash(crash.partition);
        let recover = crash.recover_after.min(remaining.saturating_sub(to_crash));
        std::thread::sleep(recover);
        cluster.net.set_crashed(crash.partition, false);
        let rest = remaining.saturating_sub(to_crash + recover);
        std::thread::sleep(rest);
    } else {
        std::thread::sleep(options.duration);
    }

    let elapsed = started.elapsed();
    recording.store(false, Ordering::SeqCst);
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    let mut snap = metrics.snapshot(elapsed.as_secs_f64());
    snap.messages = cluster.net.messages_sent();
    snap
}

/// Build a fresh cluster for `config`, load `workload` into it, run the
/// experiment and shut the cluster down.
pub fn run_experiment(
    config: ClusterConfig,
    protocol: Arc<dyn Protocol>,
    workload: Arc<dyn Workload>,
    options: &ExperimentOptions,
) -> MetricsSnapshot {
    let cluster = Cluster::new(config);
    for p in cluster.partition_ids() {
        workload.load_partition(&cluster.partition(p).store, p);
    }
    let snap = run_on_cluster(&cluster, protocol, workload, options);
    cluster.shutdown();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CommittedTxn;
    use crate::txn::{TxnContext, TxnProgram};
    use primo_common::{FastRng, Key, PhaseTimers, TableId, TxnId, TxnResult, Value};
    use primo_storage::PartitionStore;
    use primo_wal::TxnTicket;

    /// A protocol that simply installs a counter increment on the home
    /// partition — enough to exercise the whole driver pipeline.
    struct CounterProtocol;

    struct CounterCtx<'a> {
        cluster: &'a Cluster,
    }

    impl TxnContext for CounterCtx<'_> {
        fn read(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<Value> {
            Ok(self
                .cluster
                .partition(p)
                .store
                .get(t, k)
                .map(|r| r.read().value)
                .unwrap_or_else(|| Value::from_u64(0)))
        }
        fn write(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
            self.cluster.partition(p).store.insert(t, k, v);
            Ok(())
        }

        fn insert(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
            self.write(p, t, k, v)
        }

        fn delete(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<()> {
            self.cluster.partition(p).store.table(t).remove(k);
            Ok(())
        }
    }

    impl Protocol for CounterProtocol {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn execute_once(
            &self,
            cluster: &Cluster,
            _txn: TxnId,
            program: &dyn TxnProgram,
            _ticket: &TxnTicket,
            _timers: &mut PhaseTimers,
        ) -> TxnResult<CommittedTxn> {
            let mut ctx = CounterCtx { cluster };
            program.execute(&mut ctx)?;
            Ok(CommittedTxn {
                ts: 0,
                ops: 1,
                distributed: false,
            })
        }
    }

    struct CounterWorkload;
    struct CounterTxn {
        home: PartitionId,
        key: Key,
    }

    impl TxnProgram for CounterTxn {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            let v = ctx.read(self.home, TableId(0), self.key)?;
            ctx.write(
                self.home,
                TableId(0),
                self.key,
                Value::from_u64(v.as_u64() + 1),
            )
        }
        fn home_partition(&self) -> PartitionId {
            self.home
        }
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn load_partition(&self, store: &PartitionStore, _p: PartitionId) {
            for k in 0..16u64 {
                store.insert(TableId(0), k, Value::from_u64(0));
            }
        }
        fn generate(&self, rng: &mut FastRng, home: PartitionId) -> Box<dyn TxnProgram> {
            Box::new(CounterTxn {
                home,
                key: rng.next_below(16),
            })
        }
    }

    #[test]
    fn experiment_driver_produces_throughput() {
        let snap = run_experiment(
            ClusterConfig::for_tests(2),
            Arc::new(CounterProtocol),
            Arc::new(CounterWorkload),
            &ExperimentOptions::quick(),
        );
        assert!(snap.committed > 0, "no transactions committed");
        assert!(snap.throughput_tps > 0.0);
        assert!(snap.mean_latency_ms >= 0.0);
    }

    #[test]
    fn crash_plan_is_survivable() {
        let opts = ExperimentOptions {
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(300),
            crash: Some(CrashPlan {
                partition: PartitionId(1),
                at: Duration::from_millis(100),
                recover_after: Duration::from_millis(50),
            }),
            ..Default::default()
        };
        let snap = run_experiment(
            ClusterConfig::for_tests(2),
            Arc::new(CounterProtocol),
            Arc::new(CounterWorkload),
            &opts,
        );
        assert!(snap.committed > 0);
    }
}
