//! The experiment driver: build a cluster, load the workload, run workers for
//! a fixed duration (with warm-up), optionally inject a partition crash, and
//! return aggregated metrics.

use crate::cluster::Cluster;
use crate::protocol::Protocol;
use crate::txn::Workload;
use crate::worker::spawn_workers;
use primo_common::config::ClusterConfig;
use primo_common::{
    ClusterStats, HistogramCounts, Metrics, MetricsSnapshot, PartitionId, TimelineWindow,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Nominal length of one live-metrics timeline window. Actual windows carry
/// their measured `len_us`, so scheduling jitter skews a window's rate math
/// by its true length, not the nominal one.
const TIMELINE_WINDOW: Duration = Duration::from_millis(100);

/// Mutable cursor of the timeline sampler: everything needed to close the
/// current window as a delta against the live [`Metrics`].
struct TimelineCursor {
    run_start: Instant,
    win_start: Instant,
    committed: u64,
    aborted: u64,
    latency: HistogramCounts,
}

impl TimelineCursor {
    fn new(metrics: &Metrics) -> Self {
        let now = Instant::now();
        TimelineCursor {
            run_start: now,
            win_start: now,
            committed: metrics.committed(),
            aborted: metrics.aborted_attempts(),
            latency: metrics.latency_counts(),
        }
    }

    /// Close the window that started at `win_start`: diff the live counters
    /// against the cursor, emit one [`TimelineWindow`], advance the cursor.
    fn close_window(&mut self, metrics: &Metrics, out: &mut Vec<TimelineWindow>) {
        let len = self.win_start.elapsed();
        let len_us = len.as_micros() as u64;
        if len_us == 0 {
            return;
        }
        let committed_now = metrics.committed();
        let aborted_now = metrics.aborted_attempts();
        let latency_now = metrics.latency_counts();
        let committed = committed_now - self.committed;
        let aborted = aborted_now - self.aborted;
        let attempts = committed + aborted;
        out.push(TimelineWindow {
            start_us: self.win_start.duration_since(self.run_start).as_micros() as u64,
            len_us,
            committed,
            aborted,
            tps: committed as f64 / len.as_secs_f64(),
            abort_rate: if attempts > 0 {
                aborted as f64 / attempts as f64
            } else {
                0.0
            },
            p99_latency_ms: latency_now.percentile_us_since(&self.latency, 0.99) as f64 / 1000.0,
        });
        self.win_start = Instant::now();
        self.committed = committed_now;
        self.aborted = aborted_now;
        self.latency = latency_now;
    }
}

/// Sample the live metrics into ~100 ms [`TimelineWindow`]s until `stop` is
/// raised, then close the final partial window. Runs on its own thread for
/// the duration of the measurement window.
fn sample_timeline(metrics: &Metrics, stop: &AtomicBool) -> Vec<TimelineWindow> {
    let mut windows = Vec::new();
    let mut cursor = TimelineCursor::new(metrics);
    while !stop.load(Ordering::Relaxed) {
        // Sleep in short slices so the sampler notices `stop` quickly and
        // the final partial window stays short.
        let mut slept = Duration::ZERO;
        while slept < TIMELINE_WINDOW && !stop.load(Ordering::Relaxed) {
            let slice = Duration::from_millis(10);
            std::thread::sleep(slice);
            slept += slice;
        }
        cursor.close_window(metrics, &mut windows);
    }
    windows
}

/// What kind of failure a [`CrashPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The whole partition leader fails: in-memory state is wiped, the
    /// partition is unreachable for the outage, and a replacement replays
    /// the durable log (Fig 12b; §5.2).
    PartitionLoss,
    /// Only the coordinator role fails, at worker granularity: a one-shot
    /// trap is armed on the partition, and the next distributed commit it
    /// coordinates dies *between* the vote round and the decision — the
    /// classic 2PC in-doubt window. The partition itself stays up, so no
    /// recovery step runs; what happens to the stranded transaction is
    /// entirely down to the atomic-commit layer (blocks under classic 2PC,
    /// resolves from the durable vote set under Paxos Commit).
    Coordinator,
}

/// A scheduled failure injection (Fig 12b measures the resulting crash-abort
/// rate; §5.2 describes the recovery).
///
/// Both durations are clamped to the measurement window by the driver, and
/// teardown always recovers whatever is still crashed — a plan can never
/// leave a partition permanently down at experiment end, whatever its
/// timing.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Which partition fails (or, for [`CrashKind::Coordinator`], which
    /// partition's coordinator role is trapped).
    pub partition: PartitionId,
    /// When (after measurement starts).
    pub at: Duration,
    /// How long the leader stays down before the replacement starts its
    /// recovery (the replacement then replays the durable log, so the
    /// partition is unreachable for `recover_after` *plus* the replay time).
    /// Ignored for [`CrashKind::Coordinator`] — nothing goes down.
    pub recover_after: Duration,
    /// What fails.
    pub kind: CrashKind,
}

impl CrashPlan {
    /// A whole-partition leader crash followed by real recovery.
    pub fn partition_loss(partition: PartitionId, at: Duration, recover_after: Duration) -> Self {
        CrashPlan {
            partition,
            at,
            recover_after,
            kind: CrashKind::PartitionLoss,
        }
    }

    /// Arm a one-shot coordinator crash on `partition` at `at`: the next
    /// distributed commit that partition coordinates dies between its vote
    /// round and the decision.
    pub fn coordinator(partition: PartitionId, at: Duration) -> Self {
        CrashPlan {
            partition,
            at,
            recover_after: Duration::ZERO,
            kind: CrashKind::Coordinator,
        }
    }
}

/// Knobs for one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    pub warmup: Duration,
    pub duration: Duration,
    pub crash: Option<CrashPlan>,
    /// Extra one-way delay for control (watermark / epoch) messages sent by
    /// this partition — Fig 13a.
    pub lag_partition: Option<(PartitionId, u64)>,
    /// Extra per-transaction execution time on this partition — Fig 13b
    /// ("masked cores").
    pub slow_partition: Option<(PartitionId, u64)>,
    /// Periodic checkpoint interval. A base checkpoint is always taken after
    /// loading; `Some(iv)` additionally folds the durable log into a fresh
    /// image every `iv` (bounding both log growth and recovery replay).
    pub checkpoint_interval: Option<Duration>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            warmup: Duration::from_millis(200),
            duration: Duration::from_secs(1),
            crash: None,
            lag_partition: None,
            slow_partition: None,
            checkpoint_interval: None,
        }
    }
}

impl ExperimentOptions {
    pub fn quick() -> Self {
        ExperimentOptions {
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(300),
            ..Default::default()
        }
    }
}

/// Run one experiment on an existing, already-loaded cluster.
pub fn run_on_cluster(
    cluster: &Arc<Cluster>,
    protocol: Arc<dyn Protocol>,
    workload: Arc<dyn Workload>,
    options: &ExperimentOptions,
) -> MetricsSnapshot {
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    let recording = Arc::new(AtomicBool::new(false));

    if let Some((p, us)) = options.lag_partition {
        cluster.bus.set_extra_delay_from(p, us);
        cluster.net.set_extra_delay_us(p, us);
    }
    if let Some((p, us)) = options.slow_partition {
        cluster.partition(p).set_slowdown_us(us);
    }

    // Base checkpoints before any worker runs: the store is quiescent, and a
    // crash at any later point can always rebuild the loaded data.
    cluster.checkpoint_all();

    let handles = spawn_workers(cluster, &protocol, &workload, &metrics, &stop, &recording);

    // Periodic checkpointing folds the durable log into fresh images while
    // the measurement runs.
    let checkpointer = options.checkpoint_interval.map(|interval| {
        let cluster = Arc::clone(cluster);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("checkpointer".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    cluster.checkpoint_all();
                }
            })
            .expect("spawn checkpointer")
    });

    std::thread::sleep(options.warmup);
    recording.store(true, Ordering::SeqCst);
    let started = Instant::now();

    // The live timeline samples TPS / abort-rate / p99 in ~100 ms windows
    // for the whole measurement (crash dips and recovery ramps survive in
    // the series instead of being averaged away by the run-long totals).
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&sampler_stop);
        std::thread::Builder::new()
            .name("timeline".into())
            .spawn(move || sample_timeline(&metrics, &stop))
            .expect("spawn timeline sampler")
    };

    // Crash injection runs on this driver thread so the timeline is exact.
    // Both the crash point and the outage are clamped to the measurement
    // window so the recovery always happens inside this function.
    let mut post_recovery: Option<(u64, Instant)> = None;
    match options.crash {
        Some(crash) if crash.kind == CrashKind::PartitionLoss => {
            let remaining = options.duration;
            let to_crash = crash.at.min(remaining);
            std::thread::sleep(to_crash);
            cluster.crash_partition(crash.partition);
            let outage = crash.recover_after.min(remaining.saturating_sub(to_crash));
            std::thread::sleep(outage);
            // Real recovery: wipe + checkpoint restore + durable-log replay.
            // The partition stays unreachable while it runs.
            if let Some(report) = cluster.recover_partition(crash.partition) {
                metrics.record_recovery(report.duration_us, report.replayed_txns as u64);
            }
            post_recovery = Some((metrics.committed(), Instant::now()));
            let rest = remaining.saturating_sub(to_crash + outage);
            std::thread::sleep(rest);
        }
        Some(crash) => {
            // Coordinator crash: arm the one-shot trap and let the workers
            // run on. The partition never goes down, so there is nothing to
            // recover — the atomic-commit layer decides the stranded
            // transaction's fate.
            let remaining = options.duration;
            let to_crash = crash.at.min(remaining);
            std::thread::sleep(to_crash);
            cluster.arm_coordinator_crash(crash.partition);
            std::thread::sleep(remaining.saturating_sub(to_crash));
        }
        None => std::thread::sleep(options.duration),
    }

    let elapsed = started.elapsed();
    let post_recovery = post_recovery.map(|(committed_at_recovery, at)| {
        let tail = at.elapsed().as_secs_f64();
        let committed_after = metrics.committed().saturating_sub(committed_at_recovery);
        if tail > 0.0 {
            committed_after as f64 / tail
        } else {
            0.0
        }
    });
    recording.store(false, Ordering::SeqCst);
    sampler_stop.store(true, Ordering::SeqCst);
    let timeline = sampler.join().unwrap_or_default();
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    if let Some(h) = checkpointer {
        let _ = h.join();
    }
    // Teardown safety net: whatever is still crashed (a plan that out-lived
    // the window, a crash injected by a facade caller) is recovered now so
    // no experiment ever hands back a cluster with a dead partition.
    for p in cluster.crashed_partitions() {
        if let Some(report) = cluster.recover_partition(p) {
            metrics.record_recovery(report.duration_us, report.replayed_txns as u64);
        }
    }
    // Every cluster-level counter travels through ClusterStats (no Default):
    // adding a field there forces this literal — and therefore the figures —
    // to account for it at compile time instead of silently reporting 0.
    let mut snap = metrics.snapshot(
        elapsed.as_secs_f64(),
        ClusterStats {
            pruned_versions: cluster.pruned_versions(),
            post_recovery_tps: post_recovery.unwrap_or(0.0),
            compensated_txns: cluster.compensated_txns(),
            leader_changes: cluster.leader_changes(),
            replication_lag_us: cluster.replication_lag_us(),
            wal_append_wait_us: cluster.wal_append_wait_us(),
            replication_batch_len: cluster.replication_batch_len(),
            in_doubt_resolved: cluster.in_doubt_resolved(),
            orphaned_txns: cluster.orphaned_txns(),
            commit_decisions: cluster.commit_decisions(),
            commit_decide_mean_us: cluster.commit_decide_mean_us(),
            commit_decide_p99_us: cluster.commit_decide_p99_us(),
            remote_round_trips_per_dist_txn: {
                let dist = metrics.dist_committed();
                if dist > 0 {
                    cluster.net.round_trips_charged() as f64 / dist as f64
                } else {
                    0.0
                }
            },
            prefetch_hit_rate: cluster.prefetch_hit_rate(),
            timeline,
        },
    );
    snap.messages = cluster.net.messages_sent();
    snap
}

/// Build a fresh cluster for `config`, load `workload` into it, run the
/// experiment and shut the cluster down.
pub fn run_experiment(
    config: ClusterConfig,
    protocol: Arc<dyn Protocol>,
    workload: Arc<dyn Workload>,
    options: &ExperimentOptions,
) -> MetricsSnapshot {
    let cluster = Cluster::new(config);
    for p in cluster.partition_ids() {
        workload.load_partition(&cluster.partition(p).store, p);
    }
    let snap = run_on_cluster(&cluster, protocol, workload, options);
    cluster.shutdown();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CommittedTxn;
    use crate::txn::{TxnContext, TxnProgram};
    use primo_common::{FastRng, Key, PhaseTimers, TableId, TxnId, TxnResult, Value};
    use primo_storage::PartitionStore;
    use primo_wal::TxnTicket;

    /// A protocol that simply installs a counter increment on the home
    /// partition — enough to exercise the whole driver pipeline.
    struct CounterProtocol;

    struct CounterCtx<'a> {
        cluster: &'a Cluster,
    }

    impl TxnContext for CounterCtx<'_> {
        fn read(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<Value> {
            Ok(self
                .cluster
                .partition(p)
                .store
                .get(t, k)
                .map(|r| r.read().value)
                .unwrap_or_else(|| Value::from_u64(0)))
        }
        fn write(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
            self.cluster.partition(p).store.insert(t, k, v);
            Ok(())
        }

        fn insert(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
            self.write(p, t, k, v)
        }

        fn delete(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<()> {
            self.cluster.partition(p).store.table(t).remove(k);
            Ok(())
        }
    }

    impl Protocol for CounterProtocol {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn execute_once(
            &self,
            cluster: &Cluster,
            _txn: TxnId,
            program: &dyn TxnProgram,
            _ticket: &TxnTicket,
            _timers: &mut PhaseTimers,
            _fanout: &crate::prefetch::ReadFanout,
        ) -> TxnResult<CommittedTxn> {
            let mut ctx = CounterCtx { cluster };
            program.execute(&mut ctx)?;
            Ok(CommittedTxn {
                ts: 0,
                ops: 1,
                distributed: false,
            })
        }
    }

    struct CounterWorkload;
    struct CounterTxn {
        home: PartitionId,
        key: Key,
    }

    impl TxnProgram for CounterTxn {
        fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
            let v = ctx.read(self.home, TableId(0), self.key)?;
            ctx.write(
                self.home,
                TableId(0),
                self.key,
                Value::from_u64(v.as_u64() + 1),
            )
        }
        fn home_partition(&self) -> PartitionId {
            self.home
        }
    }

    impl Workload for CounterWorkload {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn load_partition(&self, store: &PartitionStore, _p: PartitionId) {
            for k in 0..16u64 {
                store.insert(TableId(0), k, Value::from_u64(0));
            }
        }
        fn generate(&self, rng: &mut FastRng, home: PartitionId) -> Box<dyn TxnProgram> {
            Box::new(CounterTxn {
                home,
                key: rng.next_below(16),
            })
        }
    }

    #[test]
    fn experiment_driver_produces_throughput() {
        let snap = run_experiment(
            ClusterConfig::for_tests(2),
            Arc::new(CounterProtocol),
            Arc::new(CounterWorkload),
            &ExperimentOptions::quick(),
        );
        assert!(snap.committed > 0, "no transactions committed");
        assert!(snap.throughput_tps > 0.0);
        assert!(snap.mean_latency_ms >= 0.0);
    }

    #[test]
    fn crash_plan_is_survivable() {
        let opts = ExperimentOptions {
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(300),
            crash: Some(CrashPlan::partition_loss(
                PartitionId(1),
                Duration::from_millis(100),
                Duration::from_millis(50),
            )),
            ..Default::default()
        };
        let snap = run_experiment(
            ClusterConfig::for_tests(2),
            Arc::new(CounterProtocol),
            Arc::new(CounterWorkload),
            &opts,
        );
        assert!(snap.committed > 0);
        assert!(snap.recovery_time_us > 0, "real recovery ran");
        assert!(snap.post_recovery_tps > 0.0, "throughput resumed after it");
    }

    #[test]
    fn overlong_recover_after_cannot_leave_the_partition_crashed() {
        // recover_after extends far past the measurement window: the driver
        // clamps it, recovery still runs, and the cluster comes back with no
        // crashed partition.
        let cluster = Cluster::new(ClusterConfig::for_tests(2));
        let workload = CounterWorkload;
        for p in cluster.partition_ids() {
            crate::txn::Workload::load_partition(&workload, &cluster.partition(p).store, p);
        }
        let opts = ExperimentOptions {
            warmup: Duration::from_millis(10),
            duration: Duration::from_millis(120),
            crash: Some(CrashPlan::partition_loss(
                PartitionId(1),
                Duration::from_millis(40),
                Duration::from_secs(3600),
            )),
            ..Default::default()
        };
        let snap = run_on_cluster(
            &cluster,
            Arc::new(CounterProtocol),
            Arc::new(CounterWorkload),
            &opts,
        );
        assert!(snap.recovery_time_us > 0);
        assert!(
            cluster.crashed_partitions().is_empty(),
            "no partition may stay crashed at experiment end"
        );
        cluster.shutdown();
    }

    #[test]
    fn periodic_checkpoints_run_during_the_experiment() {
        let cluster = Cluster::new(ClusterConfig::for_tests(1));
        let workload = CounterWorkload;
        for p in cluster.partition_ids() {
            crate::txn::Workload::load_partition(&workload, &cluster.partition(p).store, p);
        }
        let opts = ExperimentOptions {
            warmup: Duration::from_millis(10),
            duration: Duration::from_millis(150),
            checkpoint_interval: Some(Duration::from_millis(30)),
            ..Default::default()
        };
        let snap = run_on_cluster(
            &cluster,
            Arc::new(CounterProtocol),
            Arc::new(CounterWorkload),
            &opts,
        );
        assert!(snap.committed > 0);
        // Base checkpoint + at least one periodic fold.
        let (_, image) = cluster
            .partition(PartitionId(0))
            .log
            .latest_checkpoint()
            .expect("checkpoints were written");
        assert!(image.len() >= 16, "base image covers the loaded keys");
        cluster.shutdown();
    }
}
