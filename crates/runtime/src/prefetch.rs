//! Batched remote-read fan-out.
//!
//! The Appendix A model (`primo-core`'s `analysis` module) makes the remote
//! round-trip ratio `t_r/t_l ≈ 20` the dominant term in distributed
//! transaction cost — yet a naive execution path pays it once per remote
//! record, *sequentially*. This module turns the per-record round trips into
//! **one parallel fan-out per attempt**: a [`Footprint`] (the remote keys the
//! attempt expects to touch) is resolved with a single batched fetch per
//! involved partition, charged via `SimNetwork::round_trip_multi` (cost =
//! slowest partition, not the sum), and the observed record versions are
//! parked in a per-attempt [`ReadFanout`] buffer.
//!
//! Footprints come from two sources:
//!
//! * **static hints** — [`TxnProgram::read_hint`](crate::txn::TxnProgram::read_hint)
//!   lets workloads declare statically-known key sets (YCSB op lists; the
//!   key-determined fraction of TPC-C);
//! * **learned footprints** — the worker's retry loop harvests the aborted
//!   attempt's remote access set ([`ReadFanout::learned`]) as the next
//!   attempt's plan, reconnaissance-style, so even hint-less programs
//!   converge to one fan-out per attempt.
//!
//! Correctness is untouched: the buffer only decides whether a remote read
//! still owes its *network charge*. Every protocol's read machinery (TicToc
//! validation, 2PL lock acquisition, Sundial leases, Aria reservations) runs
//! unchanged against the live record, so a stale prefetch is detected exactly
//! like a conflicting read today — it merely pays the fallback round trip.

use crate::cluster::Cluster;
use parking_lot::Mutex;
use primo_common::{Key, PartitionId, TableId, Ts, TxnId};
use primo_trace::TraceEventKind;
use std::collections::HashMap;

/// A remote-read plan: the out-of-home keys one transaction attempt expects
/// to touch. Deduplicated; home-partition keys are dropped (local reads are
/// free).
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    keys: Vec<(PartitionId, TableId, Key)>,
}

impl Footprint {
    /// Build a plan from raw keys (a program's `read_hint()` or a previous
    /// attempt's observed access set), keeping only remote ones.
    pub fn from_keys(home: PartitionId, keys: Vec<(PartitionId, TableId, Key)>) -> Self {
        let mut out: Vec<(PartitionId, TableId, Key)> = Vec::with_capacity(keys.len());
        for k in keys {
            if k.0 != home && !out.contains(&k) {
                out.push(k);
            }
        }
        Footprint { keys: out }
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }
}

/// What the prefetch buffer knows about a remote read that is about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The key was fetched in the fan-out and the record is unchanged since:
    /// the read is served from the batch, no round trip owed.
    Hit,
    /// The key was fetched but the record moved underneath the buffer; the
    /// read falls back to a fresh round trip (an ordinary conflict).
    Stale,
    /// The key was not part of the fan-out (or batching is off).
    Miss,
}

/// Per-attempt prefetch buffer filled by [`ReadFanout::resolve`] and
/// consulted by the protocol contexts before paying a per-record round trip.
///
/// Also the learning tap: contexts report every remote access through
/// [`ReadFanout::observe`], and the worker turns the observations of an
/// aborted attempt into the retry's [`Footprint`].
#[derive(Debug, Default)]
pub struct ReadFanout {
    /// `(partition, table, key)` → record `wts` observed at fan-out time
    /// (`None` = no record existed on the owner at that point).
    entries: HashMap<(PartitionId, TableId, Key), Option<Ts>>,
    /// Remote keys this attempt actually touched, in access order.
    observed: Mutex<Vec<(PartitionId, TableId, Key)>>,
}

impl ReadFanout {
    /// An empty buffer: every lookup is a [`PrefetchOutcome::Miss`], so the
    /// attempt behaves exactly like the sequential path.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Execute the plan: one batched fetch per involved remote partition,
    /// charged as a single `round_trip_multi` (the slowest partition bounds
    /// the stall, not the sum). Crashed or out-of-range partitions are
    /// skipped — their keys simply stay Miss and the read path reports
    /// `RemoteUnavailable` exactly as it would without batching.
    pub fn resolve(&mut self, cluster: &Cluster, home: PartitionId, txn: TxnId, plan: &Footprint) {
        let mut parts: Vec<PartitionId> = Vec::new();
        for (p, _, _) in &plan.keys {
            if *p != home
                && (p.0 as usize) < cluster.num_partitions()
                && !cluster.net.is_crashed(*p)
                && !parts.contains(p)
            {
                parts.push(*p);
            }
        }
        if parts.is_empty() {
            return;
        }
        if !cluster.net.round_trip_multi(home, &parts) {
            // A partition crashed between the filter and the charge: the
            // fan-out was paid but nothing trustworthy came back.
            return;
        }
        let mut keys = 0u32;
        for (p, t, k) in &plan.keys {
            if !parts.contains(p) {
                continue;
            }
            let wts = cluster.partition(*p).store.get(*t, *k).map(|r| r.wts());
            self.entries.insert((*p, *t, *k), wts);
            keys += 1;
        }
        cluster.note_prefetch_fanout();
        cluster.recorder.emit(
            Some(txn),
            Some(home),
            TraceEventKind::PrefetchIssued {
                partitions: parts.len() as u32,
                keys,
            },
        );
    }

    /// Consult the buffer for a value-carrying remote read: a hit requires
    /// the live record's `wts` to still match what the fan-out observed
    /// (both "absent then, absent now" and "same version" qualify).
    pub fn check_value(
        &self,
        cluster: &Cluster,
        p: PartitionId,
        table: TableId,
        key: Key,
    ) -> PrefetchOutcome {
        match self.entries.get(&(p, table, key)) {
            None => PrefetchOutcome::Miss,
            Some(observed) => {
                let current = cluster.partition(p).store.get(table, key).map(|r| r.wts());
                if *observed == current {
                    PrefetchOutcome::Hit
                } else {
                    PrefetchOutcome::Stale
                }
            }
        }
    }

    /// Consult the buffer for a *dummy* read (lock-only, no value consumed):
    /// key presence in the batch is enough — the exclusive lock and the
    /// post-lock lifecycle re-check pin the live record either way.
    pub fn covers(&self, p: PartitionId, table: TableId, key: Key) -> bool {
        self.entries.contains_key(&(p, table, key))
    }

    /// Record a remote access for footprint learning.
    pub fn observe(&self, p: PartitionId, table: TableId, key: Key) {
        self.observed.lock().push((p, table, key));
    }

    /// The remote access set this attempt actually touched — the retry's
    /// prefetch plan. Empty if the attempt aborted before any remote access.
    pub fn learned(&self, home: PartitionId) -> Footprint {
        Footprint::from_keys(home, self.observed.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::config::ClusterConfig;
    use primo_common::Value;

    const T: TableId = TableId(0);

    fn setup() -> std::sync::Arc<Cluster> {
        let cluster = Cluster::new(ClusterConfig::for_tests(3));
        for p in 0..3u32 {
            for k in 0..8u64 {
                cluster
                    .partition(PartitionId(p))
                    .store
                    .insert(T, k, Value::from_u64(k));
            }
        }
        cluster
    }

    #[test]
    fn footprint_drops_home_keys_and_duplicates() {
        let fp = Footprint::from_keys(
            PartitionId(0),
            vec![
                (PartitionId(0), T, 1),
                (PartitionId(1), T, 2),
                (PartitionId(1), T, 2),
                (PartitionId(2), T, 3),
            ],
        );
        assert_eq!(fp.len(), 2);
    }

    #[test]
    fn resolve_charges_one_round_trip_for_many_partitions() {
        let cluster = setup();
        let txn = cluster.next_txn_id(PartitionId(0));
        let before = cluster.net.round_trips_charged();
        let mut fanout = ReadFanout::empty();
        let plan = Footprint::from_keys(
            PartitionId(0),
            vec![
                (PartitionId(1), T, 1),
                (PartitionId(1), T, 2),
                (PartitionId(2), T, 3),
            ],
        );
        fanout.resolve(&cluster, PartitionId(0), txn, &plan);
        assert_eq!(
            cluster.net.round_trips_charged() - before,
            1,
            "three keys on two partitions fan out as one parallel round trip"
        );
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(1), T, 1),
            PrefetchOutcome::Hit
        );
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(2), T, 3),
            PrefetchOutcome::Hit
        );
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(2), T, 7),
            PrefetchOutcome::Miss
        );
        cluster.shutdown();
    }

    #[test]
    fn version_bump_turns_a_hit_stale() {
        let cluster = setup();
        let txn = cluster.next_txn_id(PartitionId(0));
        let mut fanout = ReadFanout::empty();
        let plan = Footprint::from_keys(PartitionId(0), vec![(PartitionId(1), T, 4)]);
        fanout.resolve(&cluster, PartitionId(0), txn, &plan);
        let rec = cluster
            .partition(PartitionId(1))
            .store
            .get(T, 4)
            .expect("loaded");
        rec.install(Value::from_u64(99), 1_000);
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(1), T, 4),
            PrefetchOutcome::Stale
        );
        cluster.shutdown();
    }

    #[test]
    fn a_key_absent_at_fanout_and_at_read_is_still_a_hit() {
        let cluster = setup();
        let txn = cluster.next_txn_id(PartitionId(0));
        let mut fanout = ReadFanout::empty();
        let plan = Footprint::from_keys(PartitionId(0), vec![(PartitionId(1), T, 404)]);
        fanout.resolve(&cluster, PartitionId(0), txn, &plan);
        // The NotFound abort happens identically with or without batching —
        // the batch answered "no such record" authoritatively.
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(1), T, 404),
            PrefetchOutcome::Hit
        );
        assert!(fanout.covers(PartitionId(1), T, 404));
        cluster.shutdown();
    }

    #[test]
    fn crashed_partitions_are_skipped_not_fetched() {
        let cluster = setup();
        let txn = cluster.next_txn_id(PartitionId(0));
        cluster.net.set_crashed(PartitionId(2), true);
        let before = cluster.net.round_trips_charged();
        let mut fanout = ReadFanout::empty();
        let plan = Footprint::from_keys(
            PartitionId(0),
            vec![(PartitionId(1), T, 1), (PartitionId(2), T, 2)],
        );
        fanout.resolve(&cluster, PartitionId(0), txn, &plan);
        assert_eq!(cluster.net.round_trips_charged() - before, 1);
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(1), T, 1),
            PrefetchOutcome::Hit
        );
        assert_eq!(
            fanout.check_value(&cluster, PartitionId(2), T, 2),
            PrefetchOutcome::Miss,
            "the crashed partition's key stays a miss so the read path aborts as today"
        );
        cluster.shutdown();
    }

    #[test]
    fn learned_footprint_reproduces_the_observed_remote_set() {
        let fanout = ReadFanout::empty();
        fanout.observe(PartitionId(1), T, 7);
        fanout.observe(PartitionId(0), T, 1); // home — dropped
        fanout.observe(PartitionId(1), T, 7); // duplicate — dropped
        fanout.observe(PartitionId(2), T, 9);
        let plan = fanout.learned(PartitionId(0));
        assert_eq!(plan.len(), 2);
    }
}
