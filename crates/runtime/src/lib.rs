//! Cluster runtime: partitions, workers, the protocol abstraction and the
//! experiment driver.
//!
//! The runtime is protocol-agnostic. A [`Protocol`]
//! implements one *attempt* of a transaction; the [`worker`] loop supplies
//! retries with exponential back-off, ties the attempt to the group-commit
//! scheme and records metrics; the [`experiment`] driver assembles a cluster,
//! loads a workload, runs workers for a fixed duration and returns a
//! [`primo_common::MetricsSnapshot`].

pub mod access;
pub mod cluster;
pub mod commit;
pub mod durability;
pub mod experiment;
pub mod prefetch;
pub mod protocol;
pub mod snapshot;
pub mod txn;
pub mod worker;

pub use access::{AccessSet, ReadEntry, WriteEntry, WriteKind};
pub use cluster::{Cluster, Partition};
pub use commit::{AtomicCommit, ClassicTwoPc, PaxosCommit, PrepareOutcome, PreparedAt};
pub use durability::log_txn_writes;
pub use experiment::{run_experiment, run_on_cluster, CrashPlan, ExperimentOptions};
pub use prefetch::{Footprint, PrefetchOutcome, ReadFanout};
pub use protocol::{CommittedTxn, Protocol};
pub use snapshot::{execute_snapshot, SnapshotOutcome, SnapshotSession};
pub use txn::{ClosureProgram, TxnContext, TxnProgram, Workload};
pub use worker::run_single_txn;
