//! Read/write-set bookkeeping shared by all protocol implementations.
//!
//! Every protocol needs to remember which records it read (and the TicToc /
//! version metadata it observed), which writes it buffered, which locks it
//! holds and which partitions it touched — and must be able to undo all of it
//! on abort. Keeping this in one place keeps the protocol implementations
//! focused on their actual decision logic.

use primo_common::{AbortReason, Key, PartitionId, TableId, TxnId, Value};
use primo_storage::{LockMode, PartitionStore, Record};
use std::sync::Arc;

/// One record read by the transaction.
#[derive(Debug, Clone)]
pub struct ReadEntry {
    pub partition: PartitionId,
    pub table: TableId,
    pub key: Key,
    pub record: Arc<Record>,
    /// Observed write timestamp (TicToc `wts`, Silo version).
    pub wts: u64,
    /// Observed read timestamp (TicToc `rts`).
    pub rts: u64,
    /// Whether the transaction holds a lock on the record, and in which mode.
    pub locked: Option<LockMode>,
    /// True if this entry is a dummy read added only to pre-lock a blind
    /// write (it adds no read-write dependency, §4.2.2).
    pub dummy: bool,
}

/// How a buffered write treats a missing record at install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Update an existing record; installing against a missing record aborts
    /// the transaction (the key was never created).
    Put,
    /// Create-if-absent: the record is created at commit if it does not
    /// exist ([`TxnContext::insert`](crate::txn::TxnContext::insert)).
    Insert,
}

/// One buffered write.
#[derive(Debug, Clone)]
pub struct WriteEntry {
    pub partition: PartitionId,
    pub table: TableId,
    pub key: Key,
    pub value: Value,
    pub kind: WriteKind,
}

impl WriteEntry {
    /// A plain update.
    pub fn put(partition: PartitionId, table: TableId, key: Key, value: Value) -> Self {
        WriteEntry {
            partition,
            table,
            key,
            value,
            kind: WriteKind::Put,
        }
    }

    /// A create-if-absent insert.
    pub fn insert(partition: PartitionId, table: TableId, key: Key, value: Value) -> Self {
        WriteEntry {
            partition,
            table,
            key,
            value,
            kind: WriteKind::Insert,
        }
    }
}

/// Resolve the record a buffered write installs into, enforcing the
/// put/insert contract in one place: an insert creates the record if absent,
/// a plain put to a missing record aborts with [`AbortReason::NotFound`].
/// Every protocol's install/lock path goes through this so the semantics
/// cannot drift between protocols.
pub fn resolve_write_record(
    store: &PartitionStore,
    w: &WriteEntry,
) -> Result<Arc<Record>, AbortReason> {
    match store.get(w.table, w.key) {
        Some(r) => Ok(r),
        None if w.kind == WriteKind::Insert => Ok(store
            .table(w.table)
            .insert_if_absent(w.key, Value::zeroed(0))
            .0),
        None => Err(AbortReason::NotFound),
    }
}

/// The complete access set of one transaction attempt.
#[derive(Debug, Default)]
pub struct AccessSet {
    pub reads: Vec<ReadEntry>,
    pub writes: Vec<WriteEntry>,
}

impl AccessSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a read entry by (partition, table, key).
    pub fn find_read(&self, partition: PartitionId, table: TableId, key: Key) -> Option<usize> {
        self.reads
            .iter()
            .position(|r| r.partition == partition && r.table == table && r.key == key)
    }

    /// Look up a buffered write by (partition, table, key).
    pub fn find_write(&self, partition: PartitionId, table: TableId, key: Key) -> Option<usize> {
        self.writes
            .iter()
            .position(|w| w.partition == partition && w.table == table && w.key == key)
    }

    /// Buffer a write, overwriting a previous buffered value for the same
    /// key. Once a key is buffered as an insert it stays create-if-absent:
    /// a later plain write to the same key still refers to the record this
    /// transaction is creating.
    pub fn buffer_write(&mut self, mut entry: WriteEntry) {
        if let Some(i) = self.find_write(entry.partition, entry.table, entry.key) {
            if self.writes[i].kind == WriteKind::Insert {
                entry.kind = WriteKind::Insert;
            }
            self.writes[i] = entry;
        } else {
            self.writes.push(entry);
        }
    }

    /// Remote partitions involved, i.e. everything other than `home`.
    pub fn participants(&self, home: PartitionId) -> Vec<PartitionId> {
        let mut out: Vec<PartitionId> = Vec::new();
        for p in self
            .reads
            .iter()
            .map(|r| r.partition)
            .chain(self.writes.iter().map(|w| w.partition))
        {
            if p != home && !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Whether the transaction touched a partition other than `home`.
    pub fn is_distributed(&self, home: PartitionId) -> bool {
        !self.participants(home).is_empty()
    }

    /// Number of record operations performed (non-dummy reads plus writes).
    pub fn ops(&self) -> usize {
        self.reads.iter().filter(|r| !r.dummy).count() + self.writes.len()
    }

    /// Release every lock recorded as held by `txn` in the read set.
    pub fn release_all_locks(&mut self, txn: TxnId) {
        for r in &mut self.reads {
            if r.locked.is_some() {
                r.record.release(txn);
                r.locked = None;
            }
        }
    }

    /// Fraction of accesses that are reads (excluding dummy reads).
    pub fn read_fraction(&self) -> f64 {
        let reads = self.reads.iter().filter(|r| !r.dummy).count();
        let writes = self.writes.len();
        if reads + writes == 0 {
            return 1.0;
        }
        reads as f64 / (reads + writes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_storage::LockPolicy;

    fn entry(p: u32, key: Key, locked: bool) -> ReadEntry {
        ReadEntry {
            partition: PartitionId(p),
            table: TableId(0),
            key,
            record: Arc::new(Record::new(Value::from_u64(key))),
            wts: 0,
            rts: 0,
            locked: locked.then_some(LockMode::Exclusive),
            dummy: false,
        }
    }

    #[test]
    fn participants_excludes_home_and_dedups() {
        let mut a = AccessSet::new();
        a.reads.push(entry(0, 1, false));
        a.reads.push(entry(1, 2, false));
        a.reads.push(entry(1, 3, false));
        a.buffer_write(WriteEntry::put(
            PartitionId(2),
            TableId(0),
            9,
            Value::from_u64(0),
        ));
        let parts = a.participants(PartitionId(0));
        assert_eq!(parts, vec![PartitionId(1), PartitionId(2)]);
        assert!(a.is_distributed(PartitionId(0)));
        assert!(!AccessSet::new().is_distributed(PartitionId(0)));
    }

    #[test]
    fn buffer_write_overwrites_same_key() {
        let mut a = AccessSet::new();
        for v in [1u64, 2, 3] {
            a.buffer_write(WriteEntry::put(
                PartitionId(0),
                TableId(0),
                7,
                Value::from_u64(v),
            ));
        }
        assert_eq!(a.writes.len(), 1);
        assert_eq!(a.writes[0].value.as_u64(), 3);
        assert_eq!(a.find_write(PartitionId(0), TableId(0), 7), Some(0));
    }

    #[test]
    fn insert_kind_sticks_across_rebuffering() {
        let mut a = AccessSet::new();
        a.buffer_write(WriteEntry::insert(
            PartitionId(0),
            TableId(0),
            5,
            Value::from_u64(1),
        ));
        // A later plain write to the same key still creates the record: the
        // transaction inserted it, so the key may not exist outside the
        // write buffer.
        a.buffer_write(WriteEntry::put(
            PartitionId(0),
            TableId(0),
            5,
            Value::from_u64(2),
        ));
        assert_eq!(a.writes.len(), 1);
        assert_eq!(a.writes[0].kind, WriteKind::Insert);
        assert_eq!(a.writes[0].value.as_u64(), 2);
        // And an unrelated put stays a put.
        a.buffer_write(WriteEntry::put(
            PartitionId(0),
            TableId(0),
            6,
            Value::from_u64(3),
        ));
        assert_eq!(a.writes[1].kind, WriteKind::Put);
    }

    #[test]
    fn release_all_locks_releases_only_held() {
        let txn = TxnId::new(PartitionId(0), 1);
        let mut a = AccessSet::new();
        a.reads.push(entry(0, 1, false));
        a.reads.push(entry(0, 2, false));
        // Actually acquire the lock for key 2 so release has something to do.
        a.reads[1]
            .record
            .acquire(txn, LockMode::Exclusive, LockPolicy::NoWait);
        a.reads[1].locked = Some(LockMode::Exclusive);
        a.release_all_locks(txn);
        assert!(a.reads.iter().all(|r| r.locked.is_none()));
        assert!(!a.reads[1].record.lock().is_locked());
    }

    #[test]
    fn read_fraction_counts_non_dummy_reads() {
        let mut a = AccessSet::new();
        a.reads.push(entry(0, 1, false));
        a.reads.push(entry(0, 2, false));
        a.buffer_write(WriteEntry::put(
            PartitionId(0),
            TableId(0),
            2,
            Value::from_u64(0),
        ));
        assert!((a.read_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(AccessSet::new().read_fraction(), 1.0);
    }
}
