//! Read/write-set bookkeeping shared by all protocol implementations.
//!
//! Every protocol needs to remember which records it read (and the TicToc /
//! version metadata it observed), which writes it buffered, which locks it
//! holds and which partitions it touched — and must be able to undo all of it
//! on abort. Keeping this in one place keeps the protocol implementations
//! focused on their actual decision logic.

use parking_lot::Mutex;
use primo_common::{AbortReason, Key, PartitionId, TableId, TxnId, Value};
use primo_storage::{InsertSlot, LifecycleState, LockMode, PartitionStore, Record, Table};
use std::sync::Arc;

/// One record read by the transaction.
#[derive(Debug, Clone)]
pub struct ReadEntry {
    pub partition: PartitionId,
    pub table: TableId,
    pub key: Key,
    pub record: Arc<Record>,
    /// Observed write timestamp (TicToc `wts`, Silo version).
    pub wts: u64,
    /// Observed read timestamp (TicToc `rts`).
    pub rts: u64,
    /// Whether the transaction holds a lock on the record, and in which mode.
    pub locked: Option<LockMode>,
    /// True if this entry is a dummy read added only to pre-lock a blind
    /// write (it adds no read-write dependency, §4.2.2).
    pub dummy: bool,
}

/// How a buffered write treats the record at install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Update an existing record; installing against a missing record aborts
    /// the transaction (the key was never created).
    Put,
    /// Create-if-absent: the record is created at commit if it does not
    /// exist ([`TxnContext::insert`](crate::txn::TxnContext::insert)).
    Insert,
    /// Remove an existing record: install marks it a tombstone, the commit
    /// epilogue reclaims it
    /// ([`TxnContext::delete`](crate::txn::TxnContext::delete)). Deleting a
    /// missing record aborts with [`AbortReason::NotFound`].
    Delete,
}

/// One buffered write.
#[derive(Debug, Clone)]
pub struct WriteEntry {
    pub partition: PartitionId,
    pub table: TableId,
    pub key: Key,
    pub value: Value,
    pub kind: WriteKind,
}

impl WriteEntry {
    /// A plain update.
    pub fn put(partition: PartitionId, table: TableId, key: Key, value: Value) -> Self {
        WriteEntry {
            partition,
            table,
            key,
            value,
            kind: WriteKind::Put,
        }
    }

    /// A create-if-absent insert.
    pub fn insert(partition: PartitionId, table: TableId, key: Key, value: Value) -> Self {
        WriteEntry {
            partition,
            table,
            key,
            value,
            kind: WriteKind::Insert,
        }
    }

    /// A delete (the value is unused; install tombstones the record).
    pub fn delete(partition: PartitionId, table: TableId, key: Key) -> Self {
        WriteEntry {
            partition,
            table,
            key,
            value: Value::zeroed(0),
            kind: WriteKind::Delete,
        }
    }
}

/// Check that `record` may be acted on by `txn`, mapping the invisible
/// lifecycle states to the abort reason every protocol shares: a tombstone is
/// a committed delete (`NotFound`, not retryable), another transaction's
/// uncommitted insert is a transient conflict (`LockConflict`, retryable).
pub fn check_visible(record: &Record, txn: TxnId) -> Result<(), AbortReason> {
    match record.state() {
        LifecycleState::Visible => Ok(()),
        LifecycleState::UncommittedInsert { owner } if owner == txn => Ok(()),
        LifecycleState::UncommittedInsert { .. } => Err(AbortReason::LockConflict),
        LifecycleState::Tombstone => Err(AbortReason::NotFound),
    }
}

/// Post-lock lifecycle re-check for a buffered write: like
/// [`check_visible`], except that an *insert* bouncing off a tombstone maps
/// to a retryable conflict rather than `NotFound` — insert is create-if-
/// absent, so it can never legitimately fail `NotFound`; the retry's
/// [`resolve_write_record`] revives or recreates the slot.
pub fn check_write_visible(
    record: &Record,
    txn: TxnId,
    kind: WriteKind,
) -> Result<(), AbortReason> {
    match check_visible(record, txn) {
        Err(AbortReason::NotFound) if kind == WriteKind::Insert => Err(AbortReason::LockConflict),
        other => other,
    }
}

/// Post-lock lifecycle re-check, shared by every path that locks a record it
/// resolved earlier (reads pass [`WriteKind::Put`]): a concurrent delete may
/// have tombstoned the record between resolution and lock acquisition. On a
/// bounce this releases `txn`'s freshly acquired lock and reclaims the
/// tombstone — our lock is exactly what made the deleter's inline reclaim
/// skip the record, so race-lost tombstones cannot accumulate.
pub fn recheck_locked_record(
    record: &Record,
    txn: TxnId,
    kind: WriteKind,
    table: &Table,
    key: Key,
) -> Result<(), AbortReason> {
    if let Err(reason) = check_write_visible(record, txn, kind) {
        record.release(txn);
        table.reclaim(key);
        return Err(reason);
    }
    Ok(())
}

/// Claim the slot an insert installs into: create or revive the record in
/// `UncommittedInsert` state (logging the undo), reuse an existing visible
/// record, or report another transaction's in-flight insert as a retryable
/// conflict. The single implementation behind both [`resolve_write_record`]
/// and Primo's dummy-read path, so insert semantics cannot drift.
pub fn claim_insert_slot(
    table: Arc<Table>,
    key: Key,
    txn: TxnId,
    undo: &UndoLog,
) -> Result<Arc<Record>, AbortReason> {
    match table.insert_slot(key, txn) {
        InsertSlot::Existing(r) => Ok(r),
        InsertSlot::Created(r) => {
            undo.record_created(table, key, Arc::clone(&r), txn);
            Ok(r)
        }
        InsertSlot::Revived(r) => {
            undo.record_revived(Arc::clone(&r), txn);
            Ok(r)
        }
        InsertSlot::Busy => Err(AbortReason::LockConflict),
    }
}

/// One reversible side effect a transaction left in a table before its
/// commit decision.
#[derive(Debug)]
enum UndoAction {
    /// An insert created this record ([`InsertSlot::Created`]); undo unlinks
    /// it from the table.
    UnlinkCreated {
        table: Arc<Table>,
        key: Key,
        record: Arc<Record>,
        owner: TxnId,
    },
    /// An insert revived this tombstoned record ([`InsertSlot::Revived`]);
    /// undo restores the tombstone.
    RestoreTombstone { record: Arc<Record>, owner: TxnId },
}

/// The undo log of one transaction attempt: every record the attempt
/// materialised (or revived) ahead of its commit decision, so an abort can
/// put the table back exactly as it was.
///
/// Uses interior mutability so install paths can append while the
/// [`AccessSet`] is borrowed immutably (the log belongs to one transaction,
/// so the mutex is uncontended).
#[derive(Debug, Default)]
pub struct UndoLog {
    actions: Mutex<Vec<UndoAction>>,
}

impl UndoLog {
    /// Record a created record (from [`InsertSlot::Created`]).
    pub fn record_created(&self, table: Arc<Table>, key: Key, record: Arc<Record>, owner: TxnId) {
        self.actions.lock().push(UndoAction::UnlinkCreated {
            table,
            key,
            record,
            owner,
        });
    }

    /// Record a revived tombstone (from [`InsertSlot::Revived`]).
    pub fn record_revived(&self, record: Arc<Record>, owner: TxnId) {
        self.actions
            .lock()
            .push(UndoAction::RestoreTombstone { record, owner });
    }

    pub fn is_empty(&self) -> bool {
        self.actions.lock().is_empty()
    }

    /// Undo every recorded effect that was never installed, newest first,
    /// and drain the log. Install flips a record `Visible`, which makes the
    /// corresponding action a no-op — so this one entry point serves both
    /// the abort path (nothing was installed: everything is unwound) and the
    /// commit epilogue (installed records survive; only inserts cancelled by
    /// a later same-transaction delete are unlinked). Idempotent.
    pub fn unwind(&self) {
        let actions = std::mem::take(&mut *self.actions.lock());
        for action in actions.into_iter().rev() {
            match action {
                UndoAction::UnlinkCreated {
                    table,
                    key,
                    record,
                    owner,
                } => {
                    table.unlink_created(key, &record, owner);
                }
                UndoAction::RestoreTombstone { record, owner } => {
                    record.restore_tombstone(owner);
                }
            }
        }
    }
}

/// Resolve the record a buffered write installs into, enforcing the
/// put/insert/delete contract in one place: an insert claims the slot
/// (creating or reviving a record in `UncommittedInsert` state and logging
/// the undo), while a put or delete of a missing — or invisibly deleted —
/// record aborts with [`AbortReason::NotFound`]. Every protocol's
/// install/lock path goes through this so the semantics cannot drift between
/// protocols.
///
/// The caller must still acquire the record's exclusive lock and, for
/// records it did not just create, re-check visibility afterwards (see
/// [`check_visible`]): a record can be tombstoned between resolution and
/// lock acquisition.
pub fn resolve_write_record(
    store: &PartitionStore,
    w: &WriteEntry,
    txn: TxnId,
    undo: &UndoLog,
) -> Result<Arc<Record>, AbortReason> {
    match w.kind {
        WriteKind::Insert => claim_insert_slot(store.table(w.table), w.key, txn, undo),
        WriteKind::Put | WriteKind::Delete => match store.get(w.table, w.key) {
            Some(r) => check_visible(&r, txn).map(|()| r),
            None => Err(AbortReason::NotFound),
        },
    }
}

/// The complete access set of one transaction attempt.
#[derive(Debug, Default)]
pub struct AccessSet {
    pub reads: Vec<ReadEntry>,
    pub writes: Vec<WriteEntry>,
    /// Records materialised ahead of the commit decision; unwound on abort.
    pub undo: UndoLog,
}

impl AccessSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a read entry by (partition, table, key).
    pub fn find_read(&self, partition: PartitionId, table: TableId, key: Key) -> Option<usize> {
        self.reads
            .iter()
            .position(|r| r.partition == partition && r.table == table && r.key == key)
    }

    /// Look up a buffered write by (partition, table, key).
    pub fn find_write(&self, partition: PartitionId, table: TableId, key: Key) -> Option<usize> {
        self.writes
            .iter()
            .position(|w| w.partition == partition && w.table == table && w.key == key)
    }

    /// Buffer a write, overwriting a previous buffered value for the same
    /// key. Once a key is buffered as an insert it stays create-if-absent:
    /// a later plain write to the same key still refers to the record this
    /// transaction is creating. An insert after a buffered delete recreates
    /// the key (delete + insert = replace); contexts reject a plain put
    /// after a delete before it reaches the buffer.
    pub fn buffer_write(&mut self, mut entry: WriteEntry) {
        if let Some(i) = self.find_write(entry.partition, entry.table, entry.key) {
            if self.writes[i].kind == WriteKind::Insert && entry.kind == WriteKind::Put {
                entry.kind = WriteKind::Insert;
            }
            self.writes[i] = entry;
        } else {
            self.writes.push(entry);
        }
    }

    /// Unwind every record this attempt materialised and release every lock
    /// it holds — the table-state part of an abort. Unwinding runs first so
    /// no other transaction can claim a created record's slot between its
    /// lock release and its unlink.
    pub fn abort_unwind(&mut self, txn: TxnId) {
        self.undo.unwind();
        self.release_all_locks(txn);
    }

    /// Remote partitions involved, i.e. everything other than `home`.
    pub fn participants(&self, home: PartitionId) -> Vec<PartitionId> {
        let mut out: Vec<PartitionId> = Vec::new();
        for p in self
            .reads
            .iter()
            .map(|r| r.partition)
            .chain(self.writes.iter().map(|w| w.partition))
        {
            if p != home && !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Whether the transaction touched a partition other than `home`.
    pub fn is_distributed(&self, home: PartitionId) -> bool {
        !self.participants(home).is_empty()
    }

    /// Number of record operations performed (non-dummy reads plus writes).
    pub fn ops(&self) -> usize {
        self.reads.iter().filter(|r| !r.dummy).count() + self.writes.len()
    }

    /// Release every lock recorded as held by `txn` in the read set.
    pub fn release_all_locks(&mut self, txn: TxnId) {
        for r in &mut self.reads {
            if r.locked.is_some() {
                r.record.release(txn);
                r.locked = None;
            }
        }
    }

    /// Fraction of accesses that are reads (excluding dummy reads).
    pub fn read_fraction(&self) -> f64 {
        let reads = self.reads.iter().filter(|r| !r.dummy).count();
        let writes = self.writes.len();
        if reads + writes == 0 {
            return 1.0;
        }
        reads as f64 / (reads + writes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_storage::LockPolicy;

    fn entry(p: u32, key: Key, locked: bool) -> ReadEntry {
        ReadEntry {
            partition: PartitionId(p),
            table: TableId(0),
            key,
            record: Arc::new(Record::new(Value::from_u64(key))),
            wts: 0,
            rts: 0,
            locked: locked.then_some(LockMode::Exclusive),
            dummy: false,
        }
    }

    #[test]
    fn participants_excludes_home_and_dedups() {
        let mut a = AccessSet::new();
        a.reads.push(entry(0, 1, false));
        a.reads.push(entry(1, 2, false));
        a.reads.push(entry(1, 3, false));
        a.buffer_write(WriteEntry::put(
            PartitionId(2),
            TableId(0),
            9,
            Value::from_u64(0),
        ));
        let parts = a.participants(PartitionId(0));
        assert_eq!(parts, vec![PartitionId(1), PartitionId(2)]);
        assert!(a.is_distributed(PartitionId(0)));
        assert!(!AccessSet::new().is_distributed(PartitionId(0)));
    }

    #[test]
    fn buffer_write_overwrites_same_key() {
        let mut a = AccessSet::new();
        for v in [1u64, 2, 3] {
            a.buffer_write(WriteEntry::put(
                PartitionId(0),
                TableId(0),
                7,
                Value::from_u64(v),
            ));
        }
        assert_eq!(a.writes.len(), 1);
        assert_eq!(a.writes[0].value.as_u64(), 3);
        assert_eq!(a.find_write(PartitionId(0), TableId(0), 7), Some(0));
    }

    #[test]
    fn insert_kind_sticks_across_rebuffering() {
        let mut a = AccessSet::new();
        a.buffer_write(WriteEntry::insert(
            PartitionId(0),
            TableId(0),
            5,
            Value::from_u64(1),
        ));
        // A later plain write to the same key still creates the record: the
        // transaction inserted it, so the key may not exist outside the
        // write buffer.
        a.buffer_write(WriteEntry::put(
            PartitionId(0),
            TableId(0),
            5,
            Value::from_u64(2),
        ));
        assert_eq!(a.writes.len(), 1);
        assert_eq!(a.writes[0].kind, WriteKind::Insert);
        assert_eq!(a.writes[0].value.as_u64(), 2);
        // And an unrelated put stays a put.
        a.buffer_write(WriteEntry::put(
            PartitionId(0),
            TableId(0),
            6,
            Value::from_u64(3),
        ));
        assert_eq!(a.writes[1].kind, WriteKind::Put);
    }

    #[test]
    fn insert_after_delete_recreates_the_key() {
        let mut a = AccessSet::new();
        a.buffer_write(WriteEntry::delete(PartitionId(0), TableId(0), 4));
        assert_eq!(a.writes[0].kind, WriteKind::Delete);
        a.buffer_write(WriteEntry::insert(
            PartitionId(0),
            TableId(0),
            4,
            Value::from_u64(9),
        ));
        assert_eq!(a.writes.len(), 1);
        assert_eq!(a.writes[0].kind, WriteKind::Insert);
        assert_eq!(a.writes[0].value.as_u64(), 9);
    }

    #[test]
    fn resolve_enforces_the_lifecycle_contract() {
        let store = PartitionStore::new(PartitionId(0));
        store.insert(TableId(0), 1, Value::from_u64(1));
        let txn = TxnId::new(PartitionId(0), 1);
        let undo = UndoLog::default();

        // Put/Delete of a missing key: NotFound.
        for w in [
            WriteEntry::put(PartitionId(0), TableId(0), 404, Value::from_u64(0)),
            WriteEntry::delete(PartitionId(0), TableId(0), 404),
        ] {
            assert_eq!(
                resolve_write_record(&store, &w, txn, &undo).unwrap_err(),
                AbortReason::NotFound
            );
        }
        assert!(undo.is_empty());

        // Insert of a missing key creates an uncommitted record + undo entry.
        let ins = WriteEntry::insert(PartitionId(0), TableId(0), 7, Value::from_u64(7));
        let rec = resolve_write_record(&store, &ins, txn, &undo).unwrap();
        assert!(!rec.is_visible_to(TxnId::new(PartitionId(0), 2)));
        assert!(!undo.is_empty());

        // Another transaction's put/insert against that slot conflicts
        // (retryable), never silently succeeds.
        let other = TxnId::new(PartitionId(0), 2);
        let other_undo = UndoLog::default();
        let put = WriteEntry::put(PartitionId(0), TableId(0), 7, Value::from_u64(0));
        assert_eq!(
            resolve_write_record(&store, &put, other, &other_undo).unwrap_err(),
            AbortReason::LockConflict
        );
        assert_eq!(
            resolve_write_record(&store, &ins, other, &other_undo).unwrap_err(),
            AbortReason::LockConflict
        );

        // Unwinding the insert leaves the table as if it never happened.
        undo.unwind();
        assert!(store.get(TableId(0), 7).is_none());
        // ... and is idempotent.
        undo.unwind();
    }

    #[test]
    fn insert_bouncing_off_a_tombstone_is_retryable() {
        // An insert can never legitimately fail NotFound (it is create-if-
        // absent): when its resolved record gets tombstoned before the lock
        // lands, the post-lock re-check must yield a retryable conflict.
        let rec = Record::new(Value::from_u64(1));
        rec.install_tombstone(5);
        let txn = TxnId::new(PartitionId(0), 1);
        assert_eq!(
            check_write_visible(&rec, txn, WriteKind::Insert).unwrap_err(),
            AbortReason::LockConflict
        );
        // Puts and deletes of a deleted key genuinely fail NotFound.
        assert_eq!(
            check_write_visible(&rec, txn, WriteKind::Put).unwrap_err(),
            AbortReason::NotFound
        );
        assert_eq!(
            check_write_visible(&rec, txn, WriteKind::Delete).unwrap_err(),
            AbortReason::NotFound
        );
    }

    #[test]
    fn unwind_spares_installed_records() {
        let store = PartitionStore::new(PartitionId(0));
        let txn = TxnId::new(PartitionId(0), 1);
        let undo = UndoLog::default();
        let ins = WriteEntry::insert(PartitionId(0), TableId(0), 3, Value::from_u64(3));
        let rec = resolve_write_record(&store, &ins, txn, &undo).unwrap();
        rec.install(Value::from_u64(3), 5);
        // The commit epilogue unwinds the log; the installed record stays.
        undo.unwind();
        assert!(store.get(TableId(0), 3).is_some());
        assert!(rec.is_visible_to(TxnId::new(PartitionId(0), 99)));
    }

    #[test]
    fn resolve_revives_tombstones_and_undo_restores_them() {
        let store = PartitionStore::new(PartitionId(0));
        let rec = store.insert(TableId(0), 5, Value::from_u64(5));
        rec.install_tombstone(9);
        let txn = TxnId::new(PartitionId(0), 1);
        let undo = UndoLog::default();
        let ins = WriteEntry::insert(PartitionId(0), TableId(0), 5, Value::from_u64(6));
        let revived = resolve_write_record(&store, &ins, txn, &undo).unwrap();
        assert!(Arc::ptr_eq(&revived, &rec));
        assert!(revived.is_visible_to(txn));
        undo.unwind();
        assert!(!rec.is_visible_to(txn), "abort restores the tombstone");
        assert_eq!(check_visible(&rec, txn).unwrap_err(), AbortReason::NotFound);
    }

    #[test]
    fn release_all_locks_releases_only_held() {
        let txn = TxnId::new(PartitionId(0), 1);
        let mut a = AccessSet::new();
        a.reads.push(entry(0, 1, false));
        a.reads.push(entry(0, 2, false));
        // Actually acquire the lock for key 2 so release has something to do.
        a.reads[1]
            .record
            .acquire(txn, LockMode::Exclusive, LockPolicy::NoWait);
        a.reads[1].locked = Some(LockMode::Exclusive);
        a.release_all_locks(txn);
        assert!(a.reads.iter().all(|r| r.locked.is_none()));
        assert!(!a.reads[1].record.lock().is_locked());
    }

    #[test]
    fn read_fraction_counts_non_dummy_reads() {
        let mut a = AccessSet::new();
        a.reads.push(entry(0, 1, false));
        a.reads.push(entry(0, 2, false));
        a.buffer_write(WriteEntry::put(
            PartitionId(0),
            TableId(0),
            2,
            Value::from_u64(0),
        ));
        assert!((a.read_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(AccessSet::new().read_fraction(), 1.0);
    }
}
