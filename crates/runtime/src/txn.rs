//! Transactions as programs.
//!
//! The paper's central generality argument is that read/write sets cannot be
//! known before execution (transactions branch on query results, §1). We
//! therefore model a transaction as an arbitrary program over a
//! [`TxnContext`]: the engine learns about each access only when the program
//! performs it.

use primo_common::{FastRng, Key, PartitionId, TableId, TxnResult, Value};

/// The access interface a running transaction sees.
///
/// Each protocol provides its own implementation (locking reads, OCC reads,
/// buffered writes, ...). Accesses name the owning partition explicitly: the
/// workload knows its partitioning function, the engine does not.
pub trait TxnContext {
    /// Read a record. Returns the payload visible to this transaction.
    fn read(&mut self, partition: PartitionId, table: TableId, key: Key) -> TxnResult<Value>;

    /// Buffer an update to an existing record. The value is installed at
    /// commit; installing against a record that does not exist aborts with
    /// `NotFound`. Use [`TxnContext::insert`] for create-if-absent writes.
    fn write(
        &mut self,
        partition: PartitionId,
        table: TableId,
        key: Key,
        value: Value,
    ) -> TxnResult<()>;

    /// Insert a new record: buffered like a write, but the record is created
    /// at commit if it does not exist.
    ///
    /// This is a *distinct* operation, not an alias of [`TxnContext::write`]:
    /// protocol contexts record the create-if-absent intent in their write
    /// set (see `WriteKind` in the access module) so the install path knows
    /// whether a missing record is an error (plain write) or a creation
    /// (insert).
    fn insert(
        &mut self,
        partition: PartitionId,
        table: TableId,
        key: Key,
        value: Value,
    ) -> TxnResult<()>;

    /// Delete a record: buffered like a write; at commit the record is
    /// tombstoned and then physically reclaimed from its table shard.
    /// Deleting a key that does not exist aborts with `NotFound`, and later
    /// reads of a deleted key inside the same transaction see `NotFound`
    /// too. Deleting a key the same transaction inserted cancels the insert
    /// (net effect: the key never existed); a subsequent
    /// [`TxnContext::insert`] recreates a deleted key (delete + insert =
    /// replace).
    fn delete(&mut self, partition: PartitionId, table: TableId, key: Key) -> TxnResult<()>;

    /// Read-modify-write convenience: read, transform, write back.
    fn update_with(
        &mut self,
        partition: PartitionId,
        table: TableId,
        key: Key,
        f: &mut dyn FnMut(Value) -> Value,
    ) -> TxnResult<()> {
        let v = self.read(partition, table, key)?;
        self.write(partition, table, key, f(v))
    }
}

/// A transaction program, produced by a workload generator.
pub trait TxnProgram: Send + Sync {
    /// Run the transaction body against the protocol-provided context.
    /// Returning an error aborts the transaction (e.g. user rollback).
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()>;

    /// The partition the client submits the transaction to (its coordinator).
    fn home_partition(&self) -> PartitionId;

    /// Whether the transaction is declared read-only (stored procedure with
    /// no UPDATE/INSERT). Primo serves these from a snapshot without locks.
    fn is_read_only(&self) -> bool {
        false
    }

    /// Declared fraction of read operations. Only used by Primo's optional
    /// read-heavy 2PC fallback (§4.3); protocols never rely on it for
    /// correctness.
    fn read_fraction_hint(&self) -> f64 {
        0.5
    }

    /// Statically-known access set, if any: the keys the program will touch
    /// regardless of what it reads (YCSB op lists; the key-determined
    /// fraction of TPC-C). The worker prefetches the remote subset with one
    /// batched fan-out per attempt instead of a round trip per record.
    /// Include write keys too — in distributed WCF mode their dummy reads
    /// piggyback on the same batch. Purely an optimization hint: an empty,
    /// partial or even wrong hint never affects correctness, only how many
    /// reads fall back to per-record round trips.
    fn read_hint(&self) -> Vec<(PartitionId, TableId, Key)> {
        Vec::new()
    }

    /// Short label for debugging ("ycsb", "new_order", ...).
    fn label(&self) -> &'static str {
        "txn"
    }
}

/// A workload: knows how to load the initial database and how to generate
/// transaction programs for a given home partition.
pub trait Workload: Send + Sync {
    /// Human-readable name ("YCSB", "TPC-C").
    fn name(&self) -> &'static str;

    /// Populate the given partition's share of the database.
    fn load_partition(&self, store: &primo_storage::PartitionStore, partition: PartitionId);

    /// Generate the next transaction for a worker whose home is `home`.
    fn generate(&self, rng: &mut FastRng, home: PartitionId) -> Box<dyn TxnProgram>;
}

/// A transaction program defined by a closure — the most direct way to
/// express the paper's "transactions are arbitrary programs" model in ad-hoc
/// code (sessions, examples, tests).
pub struct ClosureProgram<F>
where
    F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
{
    home: PartitionId,
    read_only: bool,
    body: F,
}

impl<F> ClosureProgram<F>
where
    F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
{
    pub fn new(home: PartitionId, body: F) -> Self {
        ClosureProgram {
            home,
            read_only: false,
            body,
        }
    }

    /// Declare the program read-only (Primo serves it from a snapshot).
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }
}

impl<F> TxnProgram for ClosureProgram<F>
where
    F: Fn(&mut dyn TxnContext) -> TxnResult<()> + Send + Sync,
{
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        (self.body)(ctx)
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }

    fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn label(&self) -> &'static str {
        "closure"
    }
}

/// A trivially simple program used by runtime-level tests: read a set of
/// keys and increment each by one.
pub struct IncrementProgram {
    pub home: PartitionId,
    pub accesses: Vec<(PartitionId, TableId, Key)>,
}

impl TxnProgram for IncrementProgram {
    fn execute(&self, ctx: &mut dyn TxnContext) -> TxnResult<()> {
        for (p, t, k) in &self.accesses {
            let v = ctx.read(*p, *t, *k)?;
            ctx.write(*p, *t, *k, Value::from_u64(v.as_u64() + 1))?;
        }
        Ok(())
    }

    fn home_partition(&self) -> PartitionId {
        self.home
    }

    fn read_fraction_hint(&self) -> f64 {
        0.5
    }

    fn label(&self) -> &'static str {
        "increment"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primo_common::{AbortReason, TxnError};
    use std::collections::HashMap;

    /// A toy in-memory context for exercising program logic without a
    /// protocol.
    #[derive(Default)]
    struct MapContext {
        data: HashMap<(u32, u32, Key), u64>,
        writes: usize,
    }

    impl TxnContext for MapContext {
        fn read(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<Value> {
            self.data
                .get(&(p.0, t.0, k))
                .map(|v| Value::from_u64(*v))
                .ok_or(TxnError::Aborted(AbortReason::UserAbort))
        }

        fn write(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
            self.data.insert((p.0, t.0, k), v.as_u64());
            self.writes += 1;
            Ok(())
        }

        fn insert(&mut self, p: PartitionId, t: TableId, k: Key, v: Value) -> TxnResult<()> {
            // The map applies writes immediately, so insert and write
            // coincide here.
            self.write(p, t, k, v)
        }

        fn delete(&mut self, p: PartitionId, t: TableId, k: Key) -> TxnResult<()> {
            self.data
                .remove(&(p.0, t.0, k))
                .map(|_| ())
                .ok_or(TxnError::Aborted(AbortReason::NotFound))
        }
    }

    #[test]
    fn increment_program_updates_every_key() {
        let mut ctx = MapContext::default();
        ctx.data.insert((0, 0, 1), 10);
        ctx.data.insert((1, 0, 2), 20);
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![
                (PartitionId(0), TableId(0), 1),
                (PartitionId(1), TableId(0), 2),
            ],
        };
        prog.execute(&mut ctx).unwrap();
        assert_eq!(ctx.data[&(0, 0, 1)], 11);
        assert_eq!(ctx.data[&(1, 0, 2)], 21);
        assert_eq!(ctx.writes, 2);
        assert_eq!(prog.home_partition(), PartitionId(0));
        assert!(!prog.is_read_only());
    }

    #[test]
    fn update_with_reads_then_writes() {
        let mut ctx = MapContext::default();
        ctx.data.insert((0, 0, 7), 5);
        ctx.update_with(PartitionId(0), TableId(0), 7, &mut |v| {
            Value::from_u64(v.as_u64() * 2)
        })
        .unwrap();
        assert_eq!(ctx.data[&(0, 0, 7)], 10);
    }

    #[test]
    fn missing_key_aborts() {
        let mut ctx = MapContext::default();
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![(PartitionId(0), TableId(0), 99)],
        };
        assert!(prog.execute(&mut ctx).is_err());
    }
}
