//! The worker loop: generate → attempt → (back-off & retry) → group commit →
//! record metrics.
//!
//! Mirrors the paper's DBx1000 setup (§6.1.3): each partition leader runs a
//! fixed number of worker threads; an aborted transaction backs off
//! exponentially starting at 0.5 ms and is retried with the *same* TID (so
//! WAIT_DIE priorities age and starvation is avoided).

use crate::cluster::Cluster;
use crate::protocol::Protocol;
use crate::txn::Workload;
use primo_common::sim_time::charge_latency_us;
use primo_common::{AbortReason, FastRng, Metrics, PartitionId, Phase, PhaseTimers};
use primo_wal::{CommitOutcome, CommitWaiter};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard cap on attempts per transaction so a pathological configuration can
/// never wedge a worker forever.
const MAX_ATTEMPTS: usize = 1_000;

/// How many transactions a worker may have waiting for the group commit
/// before it applies back-pressure (blocks on the oldest). Mirrors the
/// paper's setup where a worker "initiates a new transaction when the running
/// transaction is waiting" (§6.1.3) — the client waits, the worker does not.
const MAX_PENDING_COMMITS: usize = 512;

/// A transaction whose write-set is installed but whose result has not yet
/// been confirmed durable by the group commit.
struct PendingCommit {
    waiter: CommitWaiter,
    started: Instant,
    committed_at: Instant,
    timers: PhaseTimers,
}

/// Everything a worker thread needs.
pub struct WorkerContext {
    pub cluster: Arc<Cluster>,
    pub protocol: Arc<dyn Protocol>,
    pub workload: Arc<dyn Workload>,
    pub metrics: Arc<Metrics>,
    pub home: PartitionId,
    pub worker_idx: u32,
    pub stop: Arc<AtomicBool>,
    pub recording: Arc<AtomicBool>,
}

/// Resolve (without blocking) every pending transaction whose group-commit
/// outcome is now known.
fn drain_pending(ctx: &WorkerContext, pending: &mut VecDeque<PendingCommit>) {
    while let Some(front) = pending.front() {
        match ctx.cluster.group_commit.try_outcome(&front.waiter) {
            Some(outcome) => {
                let mut done = pending.pop_front().unwrap();
                done.timers.add(Phase::Return, done.committed_at.elapsed());
                if ctx.recording.load(Ordering::Relaxed) {
                    match outcome {
                        CommitOutcome::Committed => {
                            let latency_us = done.started.elapsed().as_micros() as u64;
                            ctx.metrics.record_commit(latency_us, &done.timers);
                        }
                        CommitOutcome::CrashAborted => {
                            ctx.metrics.record_abort(AbortReason::CrashAbort);
                        }
                    }
                }
            }
            None => break,
        }
    }
}

/// Block on the oldest pending transaction (back-pressure when the group
/// commit falls far behind execution).
fn block_on_oldest(ctx: &WorkerContext, pending: &mut VecDeque<PendingCommit>) {
    if let Some(mut oldest) = pending.pop_front() {
        let outcome = ctx.cluster.group_commit.wait_durable(&oldest.waiter);
        oldest
            .timers
            .add(Phase::Return, oldest.committed_at.elapsed());
        if ctx.recording.load(Ordering::Relaxed) {
            match outcome {
                CommitOutcome::Committed => {
                    let latency_us = oldest.started.elapsed().as_micros() as u64;
                    ctx.metrics.record_commit(latency_us, &oldest.timers);
                }
                CommitOutcome::CrashAborted => ctx.metrics.record_abort(AbortReason::CrashAbort),
            }
        }
    }
}

/// Run the worker loop until the stop flag is raised.
pub fn worker_loop(ctx: WorkerContext) {
    let mut rng = FastRng::for_worker(ctx.home.0, ctx.worker_idx, 0xAB5);
    let backoff_initial = ctx.cluster.config.backoff_initial_us;
    let backoff_max = ctx.cluster.config.backoff_max_us;
    let mut pending: VecDeque<PendingCommit> = VecDeque::new();

    while !ctx.stop.load(Ordering::Relaxed) {
        // Report results of transactions whose group commit finished while we
        // were executing newer ones.
        drain_pending(&ctx, &mut pending);
        if pending.len() >= MAX_PENDING_COMMITS {
            block_on_oldest(&ctx, &mut pending);
        }

        // COCO-style schemes may briefly forbid starting new transactions.
        ctx.cluster.group_commit.execution_gate(ctx.home);
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }

        let program = ctx.workload.generate(&mut rng, ctx.home);
        let txn = ctx.cluster.next_txn_id(ctx.home);
        let mut timers = PhaseTimers::new();
        let started = Instant::now();
        let mut backoff_us = backoff_initial;
        let slowdown = ctx.cluster.partition(ctx.home).slowdown_us();

        let mut attempts = 0;
        'attempts: while attempts < MAX_ATTEMPTS && !ctx.stop.load(Ordering::Relaxed) {
            attempts += 1;
            if slowdown > 0 {
                // Simulated slow partition (Fig 13b): extra CPU time per
                // attempt, charged as execution time.
                timers.time(Phase::Execute, || charge_latency_us(slowdown));
            }
            let ticket = ctx.cluster.group_commit.begin_txn(ctx.home, txn);
            let result = ctx.protocol.execute_once(
                &ctx.cluster,
                txn,
                program.as_ref(),
                &ticket,
                &mut timers,
            );
            match result {
                Ok(commit) => {
                    let waiter = ctx
                        .cluster
                        .group_commit
                        .txn_committed(&ticket, commit.ts, commit.ops);
                    if ctx.protocol.manages_durability() {
                        if ctx.recording.load(Ordering::Relaxed) {
                            let latency_us = started.elapsed().as_micros() as u64;
                            ctx.metrics.record_commit(latency_us, &timers);
                        }
                    } else {
                        // The client keeps waiting for the watermark / epoch;
                        // the worker moves on to the next transaction.
                        pending.push_back(PendingCommit {
                            waiter,
                            started,
                            committed_at: Instant::now(),
                            timers: std::mem::take(&mut timers),
                        });
                    }
                    break 'attempts;
                }
                Err(e) => {
                    ctx.cluster.group_commit.txn_aborted(&ticket);
                    let reason = e.reason();
                    if ctx.recording.load(Ordering::Relaxed) {
                        ctx.metrics.record_abort(reason);
                    }
                    if !reason.is_retryable() {
                        if ctx.recording.load(Ordering::Relaxed) {
                            ctx.metrics.record_abandoned();
                        }
                        break 'attempts;
                    }
                }
            }
            // Exponential back-off before the next attempt (paper: 0.5 ms
            // initial, doubling).
            timers.time(Phase::Backoff, || {
                let jitter = rng.next_below(backoff_us.max(1) / 2 + 1);
                charge_latency_us(backoff_us / 2 + jitter);
            });
            backoff_us = (backoff_us * 2).min(backoff_max);
        }
    }

    // Resolve whatever is still in flight so late commits are counted.
    let deadline = Instant::now() + Duration::from_millis(200);
    while !pending.is_empty() && Instant::now() < deadline {
        drain_pending(&ctx, &mut pending);
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Spawn all worker threads for an experiment. Returns their join handles.
pub fn spawn_workers(
    cluster: &Arc<Cluster>,
    protocol: &Arc<dyn Protocol>,
    workload: &Arc<dyn Workload>,
    metrics: &Arc<Metrics>,
    stop: &Arc<AtomicBool>,
    recording: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    for p in 0..cluster.num_partitions() {
        for w in 0..cluster.config.workers_per_partition {
            let ctx = WorkerContext {
                cluster: Arc::clone(cluster),
                protocol: Arc::clone(protocol),
                workload: Arc::clone(workload),
                metrics: Arc::clone(metrics),
                home: PartitionId(p as u32),
                worker_idx: w as u32,
                stop: Arc::clone(stop),
                recording: Arc::clone(recording),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker-{p}-{w}"))
                    .spawn(move || worker_loop(ctx))
                    .expect("spawn worker"),
            );
        }
    }
    handles
}

/// Helper used by tests and examples: run a single transaction to completion
/// (with retries) outside the throughput-measurement machinery. Returns the
/// number of attempts on success.
pub fn run_single_txn(
    cluster: &Arc<Cluster>,
    protocol: &dyn Protocol,
    program: &dyn crate::txn::TxnProgram,
) -> Result<usize, AbortReason> {
    let home = program.home_partition();
    let txn = cluster.next_txn_id(home);
    let mut attempts = 0;
    let mut backoff_us = cluster.config.backoff_initial_us;
    loop {
        attempts += 1;
        if attempts > MAX_ATTEMPTS {
            return Err(AbortReason::LockConflict);
        }
        let ticket = cluster.group_commit.begin_txn(home, txn);
        let mut timers = PhaseTimers::new();
        match protocol.execute_once(cluster, txn, program, &ticket, &mut timers) {
            Ok(commit) => {
                let waiter = cluster
                    .group_commit
                    .txn_committed(&ticket, commit.ts, commit.ops);
                if protocol.manages_durability() {
                    return Ok(attempts);
                }
                match cluster.group_commit.wait_durable(&waiter) {
                    CommitOutcome::Committed => return Ok(attempts),
                    CommitOutcome::CrashAborted => {}
                }
            }
            Err(e) => {
                cluster.group_commit.txn_aborted(&ticket);
                if !e.reason().is_retryable() {
                    return Err(e.reason());
                }
            }
        }
        std::thread::sleep(Duration::from_micros(backoff_us));
        backoff_us = (backoff_us * 2).min(cluster.config.backoff_max_us);
    }
}
