//! The worker loop: generate → attempt → (back-off & retry) → group commit →
//! record metrics.
//!
//! Mirrors the paper's DBx1000 setup (§6.1.3): each partition leader runs a
//! fixed number of worker threads; an aborted transaction backs off
//! exponentially starting at 0.5 ms and is retried with the *same* TID (so
//! WAIT_DIE priorities age and starvation is avoided).

use crate::cluster::Cluster;
use crate::prefetch::{Footprint, ReadFanout};
use crate::protocol::Protocol;
use crate::txn::Workload;
use primo_common::sim_time::charge_latency_us;
use primo_common::{AbortReason, FastRng, Metrics, PartitionId, Phase, PhaseTimers};
use primo_trace::TraceEventKind;
use primo_wal::{CommitOutcome, CommitWaiter};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard cap on attempts per transaction so a pathological configuration can
/// never wedge a worker forever.
const MAX_ATTEMPTS: usize = 1_000;

/// How many transactions a worker may have waiting for the group commit
/// before it applies back-pressure (blocks on the oldest). Mirrors the
/// paper's setup where a worker "initiates a new transaction when the running
/// transaction is waiting" (§6.1.3) — the client waits, the worker does not.
const MAX_PENDING_COMMITS: usize = 512;

/// A transaction whose write-set is installed but whose result has not yet
/// been confirmed durable by the group commit.
struct PendingCommit {
    waiter: CommitWaiter,
    started: Instant,
    committed_at: Instant,
    timers: PhaseTimers,
    distributed: bool,
}

/// Everything a worker thread needs.
pub struct WorkerContext {
    pub cluster: Arc<Cluster>,
    pub protocol: Arc<dyn Protocol>,
    pub workload: Arc<dyn Workload>,
    pub metrics: Arc<Metrics>,
    pub home: PartitionId,
    pub worker_idx: u32,
    pub stop: Arc<AtomicBool>,
    pub recording: Arc<AtomicBool>,
}

/// Resolve (without blocking) every pending transaction whose group-commit
/// outcome is now known.
fn drain_pending(ctx: &WorkerContext, pending: &mut VecDeque<PendingCommit>) {
    while let Some(front) = pending.front() {
        match ctx.cluster.group_commit.try_outcome(&front.waiter) {
            Some(outcome) => {
                let mut done = pending.pop_front().unwrap();
                done.timers.add(Phase::Return, done.committed_at.elapsed());
                ctx.cluster.recorder.emit(
                    Some(done.waiter.txn),
                    Some(done.waiter.coordinator),
                    TraceEventKind::GroupCommitRelease {
                        committed: matches!(outcome, CommitOutcome::Committed),
                    },
                );
                if ctx.recording.load(Ordering::Relaxed) {
                    match outcome {
                        CommitOutcome::Committed => {
                            let latency_us = done.started.elapsed().as_micros() as u64;
                            ctx.metrics
                                .record_commit(latency_us, &done.timers, done.distributed);
                        }
                        CommitOutcome::CrashAborted => {
                            ctx.metrics.record_abort(AbortReason::CrashAbort);
                        }
                    }
                }
            }
            None => break,
        }
    }
}

/// Block on the oldest pending transaction (back-pressure when the group
/// commit falls far behind execution).
fn block_on_oldest(ctx: &WorkerContext, pending: &mut VecDeque<PendingCommit>) {
    if let Some(mut oldest) = pending.pop_front() {
        let outcome = ctx.cluster.group_commit.wait_durable(&oldest.waiter);
        oldest
            .timers
            .add(Phase::Return, oldest.committed_at.elapsed());
        ctx.cluster.recorder.emit(
            Some(oldest.waiter.txn),
            Some(oldest.waiter.coordinator),
            TraceEventKind::GroupCommitRelease {
                committed: matches!(outcome, CommitOutcome::Committed),
            },
        );
        if ctx.recording.load(Ordering::Relaxed) {
            match outcome {
                CommitOutcome::Committed => {
                    let latency_us = oldest.started.elapsed().as_micros() as u64;
                    ctx.metrics
                        .record_commit(latency_us, &oldest.timers, oldest.distributed);
                }
                CommitOutcome::CrashAborted => ctx.metrics.record_abort(AbortReason::CrashAbort),
            }
        }
    }
}

/// Run the worker loop until the stop flag is raised.
pub fn worker_loop(ctx: WorkerContext) {
    let mut rng = FastRng::for_worker(ctx.home.0, ctx.worker_idx, 0xAB5);
    let backoff_initial = ctx.cluster.config.backoff_initial_us;
    let backoff_max = ctx.cluster.config.backoff_max_us;
    let mut pending: VecDeque<PendingCommit> = VecDeque::new();

    while !ctx.stop.load(Ordering::Relaxed) {
        // Report results of transactions whose group commit finished while we
        // were executing newer ones.
        drain_pending(&ctx, &mut pending);
        if pending.len() >= MAX_PENDING_COMMITS {
            block_on_oldest(&ctx, &mut pending);
        }

        // COCO-style schemes may briefly forbid starting new transactions.
        ctx.cluster.group_commit.execution_gate(ctx.home);
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }

        let program = ctx.workload.generate(&mut rng, ctx.home);
        let mut timers = PhaseTimers::new();
        let started = Instant::now();

        // Declared read-only transactions are served from the MVCC snapshot
        // at the durable group-commit horizon: no ticket, no locks, no
        // validation, no group-commit wait — the result is final the moment
        // execution ends. An unanswerable read (bounded chain outran the
        // horizon) falls back to the protocol path below.
        if program.is_read_only() && crate::snapshot::snapshot_reads_enabled(&ctx.cluster) {
            let done = timers.time(Phase::Execute, || {
                match crate::snapshot::execute_snapshot(&ctx.cluster, program.as_ref()) {
                    crate::snapshot::SnapshotOutcome::Done(result) => Some(result),
                    crate::snapshot::SnapshotOutcome::Fallback => None,
                }
            });
            if let Some(result) = done {
                if ctx.recording.load(Ordering::Relaxed) {
                    match result {
                        Ok(()) => {
                            let latency_us = started.elapsed().as_micros() as u64;
                            // Snapshot reads pay no remote round trips and
                            // never enter the protocol path, so they stay
                            // out of the distributed-latency histogram.
                            ctx.metrics.record_commit(latency_us, &timers, false);
                            ctx.metrics.record_snapshot_read();
                        }
                        Err(e) => {
                            // Program-level abort (e.g. NotFound at the
                            // snapshot): final, never retried.
                            ctx.metrics.record_abort(e.reason());
                            ctx.metrics.record_abandoned();
                        }
                    }
                }
                continue;
            }
        }

        let txn = ctx.cluster.next_txn_id(ctx.home);
        let mut backoff_us = backoff_initial;
        let slowdown = ctx.cluster.partition(ctx.home).slowdown_us();

        // The remote-read plan: the program's static hint for the first
        // attempt, then each aborted attempt's observed access set for the
        // retry (reconnaissance-style), so even hint-less programs converge
        // to one batched fan-out per attempt.
        let batching = ctx.cluster.config.batch_remote_reads;
        let mut plan = if batching {
            Footprint::from_keys(ctx.home, program.read_hint())
        } else {
            Footprint::default()
        };

        let mut attempts = 0;
        'attempts: while attempts < MAX_ATTEMPTS && !ctx.stop.load(Ordering::Relaxed) {
            attempts += 1;
            ctx.cluster.recorder.emit(
                Some(txn),
                Some(ctx.home),
                TraceEventKind::Begin {
                    attempt: attempts as u32,
                },
            );
            if slowdown > 0 {
                // Simulated slow partition (Fig 13b): extra CPU time per
                // attempt, charged as execution time.
                timers.time(Phase::Execute, || charge_latency_us(slowdown));
            }
            let ticket = ctx.cluster.group_commit.begin_txn(ctx.home, txn);
            let mut fanout = ReadFanout::empty();
            if batching && !plan.is_empty() {
                timers.time(Phase::Execute, || {
                    fanout.resolve(&ctx.cluster, ctx.home, txn, &plan)
                });
            }
            let result = ctx.protocol.execute_once(
                &ctx.cluster,
                txn,
                program.as_ref(),
                &ticket,
                &mut timers,
                &fanout,
            );
            match result {
                Ok(commit) => {
                    let waiter = ctx
                        .cluster
                        .group_commit
                        .txn_committed(&ticket, commit.ts, commit.ops);
                    ctx.cluster.recorder.emit(
                        Some(txn),
                        Some(ctx.home),
                        TraceEventKind::Committed { ts: commit.ts },
                    );
                    if ctx.protocol.manages_durability() {
                        if ctx.recording.load(Ordering::Relaxed) {
                            let latency_us = started.elapsed().as_micros() as u64;
                            ctx.metrics
                                .record_commit(latency_us, &timers, commit.distributed);
                        }
                    } else {
                        // The client keeps waiting for the watermark / epoch;
                        // the worker moves on to the next transaction.
                        pending.push_back(PendingCommit {
                            waiter,
                            started,
                            committed_at: Instant::now(),
                            timers: std::mem::take(&mut timers),
                            distributed: commit.distributed,
                        });
                    }
                    break 'attempts;
                }
                Err(e) => {
                    ctx.cluster.group_commit.txn_aborted(&ticket);
                    let reason = e.reason();
                    ctx.cluster.recorder.emit(
                        Some(txn),
                        Some(ctx.home),
                        TraceEventKind::Abort { reason },
                    );
                    if ctx.recording.load(Ordering::Relaxed) {
                        ctx.metrics.record_abort(reason);
                    }
                    if !reason.is_retryable() {
                        if ctx.recording.load(Ordering::Relaxed) {
                            ctx.metrics.record_abandoned();
                        }
                        break 'attempts;
                    }
                    if batching {
                        // Learn the aborted attempt's remote footprint as the
                        // retry's prefetch plan.
                        let learned = fanout.learned(ctx.home);
                        if !learned.is_empty() {
                            plan = learned;
                        }
                    }
                }
            }
            // Exponential back-off before the next attempt (paper: 0.5 ms
            // initial, doubling).
            timers.time(Phase::Backoff, || {
                let jitter = rng.next_below(backoff_us.max(1) / 2 + 1);
                charge_latency_us(backoff_us / 2 + jitter);
            });
            backoff_us = (backoff_us * 2).min(backoff_max);
        }
    }

    // Resolve whatever is still in flight so late commits are counted.
    let deadline = Instant::now() + Duration::from_millis(200);
    while !pending.is_empty() && Instant::now() < deadline {
        drain_pending(&ctx, &mut pending);
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Spawn all worker threads for an experiment. Returns their join handles.
pub fn spawn_workers(
    cluster: &Arc<Cluster>,
    protocol: &Arc<dyn Protocol>,
    workload: &Arc<dyn Workload>,
    metrics: &Arc<Metrics>,
    stop: &Arc<AtomicBool>,
    recording: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    for p in 0..cluster.num_partitions() {
        for w in 0..cluster.config.workers_per_partition {
            let ctx = WorkerContext {
                cluster: Arc::clone(cluster),
                protocol: Arc::clone(protocol),
                workload: Arc::clone(workload),
                metrics: Arc::clone(metrics),
                home: PartitionId(p as u32),
                worker_idx: w as u32,
                stop: Arc::clone(stop),
                recording: Arc::clone(recording),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("worker-{p}-{w}"))
                    .spawn(move || worker_loop(ctx))
                    .expect("spawn worker"),
            );
        }
    }
    handles
}

/// Helper used by tests and examples: run a single transaction to completion
/// (with retries) outside the throughput-measurement machinery. Returns the
/// number of attempts on success.
///
/// Every attempt runs under a **fresh** transaction id. A crash-aborted
/// attempt has already logged a `TxnWrites` entry per partition (and may
/// have been sealed with a `TxnRolledBack` marker by compensation); reusing
/// its id for the retry would let replay's dedup-by-transaction merge the
/// rolled-back and the committed attempt — and a marker would cancel both.
pub fn run_single_txn(
    cluster: &Arc<Cluster>,
    protocol: &dyn Protocol,
    program: &dyn crate::txn::TxnProgram,
) -> Result<usize, AbortReason> {
    let home = program.home_partition();
    // The same snapshot dispatch the worker loop uses: a declared read-only
    // program resolves at the durable horizon unless a read is unanswerable.
    if program.is_read_only() && crate::snapshot::snapshot_reads_enabled(cluster) {
        match crate::snapshot::execute_snapshot(cluster, program) {
            crate::snapshot::SnapshotOutcome::Done(Ok(())) => return Ok(1),
            crate::snapshot::SnapshotOutcome::Done(Err(e)) => return Err(e.reason()),
            crate::snapshot::SnapshotOutcome::Fallback => {}
        }
    }
    let mut attempts = 0;
    let mut backoff_us = cluster.config.backoff_initial_us;
    // When MAX_ATTEMPTS runs out, report what actually aborted the last
    // attempt rather than a blanket LockConflict.
    let mut last_reason = AbortReason::LockConflict;
    // Same prefetch plan lifecycle as the worker loop: static hint first,
    // then the aborted attempt's learned footprint.
    let batching = cluster.config.batch_remote_reads;
    let mut plan = if batching {
        Footprint::from_keys(home, program.read_hint())
    } else {
        Footprint::default()
    };
    loop {
        attempts += 1;
        if attempts > MAX_ATTEMPTS {
            return Err(last_reason);
        }
        let txn = cluster.next_txn_id(home);
        let ticket = cluster.group_commit.begin_txn(home, txn);
        let mut timers = PhaseTimers::new();
        let mut fanout = ReadFanout::empty();
        if batching && !plan.is_empty() {
            timers.time(Phase::Execute, || fanout.resolve(cluster, home, txn, &plan));
        }
        match protocol.execute_once(cluster, txn, program, &ticket, &mut timers, &fanout) {
            Ok(commit) => {
                let waiter = cluster
                    .group_commit
                    .txn_committed(&ticket, commit.ts, commit.ops);
                if protocol.manages_durability() {
                    return Ok(attempts);
                }
                match cluster.group_commit.wait_durable(&waiter) {
                    CommitOutcome::Committed => return Ok(attempts),
                    CommitOutcome::CrashAborted => last_reason = AbortReason::CrashAbort,
                }
            }
            Err(e) => {
                cluster.group_commit.txn_aborted(&ticket);
                if !e.reason().is_retryable() {
                    return Err(e.reason());
                }
                last_reason = e.reason();
                if batching {
                    let learned = fanout.learned(home);
                    if !learned.is_empty() {
                        plan = learned;
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_micros(backoff_us));
        backoff_us = (backoff_us * 2).min(cluster.config.backoff_max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::WriteEntry;
    use crate::protocol::CommittedTxn;
    use crate::txn::{IncrementProgram, TxnProgram};
    use primo_common::config::{ClusterConfig, LoggingScheme};
    use primo_common::{TableId, TxnError, TxnId, Value};
    use primo_wal::{ReplayBound, TxnTicket};

    /// Stub protocol: every attempt logs one insert write-set (like a real
    /// install path would, under its write locks) and reports success.
    struct LoggingProtocol;

    impl Protocol for LoggingProtocol {
        fn name(&self) -> &'static str {
            "logging-stub"
        }
        fn execute_once(
            &self,
            cluster: &Cluster,
            txn: TxnId,
            _program: &dyn TxnProgram,
            ticket: &TxnTicket,
            _timers: &mut primo_common::PhaseTimers,
            _fanout: &ReadFanout,
        ) -> primo_common::TxnResult<CommittedTxn> {
            let ts = cluster.group_commit.finalize_commit_ts(ticket, 0);
            let writes = vec![WriteEntry::insert(
                PartitionId(0),
                TableId(0),
                1,
                Value::from_u64(txn.seq),
            )];
            crate::durability::log_txn_writes(cluster, txn, ts, &writes);
            Ok(CommittedTxn {
                ts,
                ops: 1,
                distributed: false,
            })
        }
    }

    /// Regression: a crash-aborted-then-committed transaction must log its
    /// attempts under **distinct** transaction ids. With a shared id,
    /// replay's dedup-by-transaction merges the rolled-back and the
    /// committed attempt — and a `TxnRolledBack` marker for the first
    /// attempt would cancel the committed one too.
    #[test]
    fn retries_after_crash_abort_use_fresh_txn_ids() {
        let mut config = ClusterConfig::for_tests(1);
        config.wal.scheme = LoggingScheme::Clv;
        config.wal.persist_delay_us = 30_000; // 30 ms
        let cluster = Cluster::new(config);
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![],
        };
        let c2 = Arc::clone(&cluster);
        let runner = std::thread::spawn(move || run_single_txn(&c2, &LoggingProtocol, &prog));
        // Inject the scheme-level crash while the first attempt is inside
        // its persist window (the partition itself stays up): under CLV a
        // commit whose window spans the crash instant is rolled back; the
        // retry starts after the instant and commits.
        while cluster.partition(PartitionId(0)).log.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        cluster.group_commit.on_partition_crash(PartitionId(0));
        let attempts = runner.join().unwrap().expect("the retry commits");
        assert!(
            attempts >= 2,
            "at least one crash-aborted attempt, got {attempts}"
        );
        std::thread::sleep(Duration::from_millis(35));
        let replayed = cluster.partition(PartitionId(0)).log.replay_range(
            0,
            &ReplayBound::Lsn(u64::MAX),
            None,
        );
        assert_eq!(
            replayed.len(),
            attempts,
            "every attempt logged under its own id — dedup must not merge them"
        );
        cluster.shutdown();
    }

    /// Regression: exhausting MAX_ATTEMPTS reports the reason that actually
    /// aborted the last attempt, not a blanket LockConflict.
    struct AlwaysValidationAbort;

    impl Protocol for AlwaysValidationAbort {
        fn name(&self) -> &'static str {
            "always-validation"
        }
        fn execute_once(
            &self,
            _cluster: &Cluster,
            _txn: TxnId,
            _program: &dyn TxnProgram,
            _ticket: &TxnTicket,
            _timers: &mut primo_common::PhaseTimers,
            _fanout: &ReadFanout,
        ) -> primo_common::TxnResult<CommittedTxn> {
            Err(TxnError::Aborted(AbortReason::Validation))
        }
    }

    #[test]
    fn exhausted_retries_surface_the_last_real_reason() {
        let mut config = ClusterConfig::for_tests(1);
        config.backoff_initial_us = 1;
        config.backoff_max_us = 1;
        let cluster = Cluster::new(config);
        let prog = IncrementProgram {
            home: PartitionId(0),
            accesses: vec![],
        };
        let err = run_single_txn(&cluster, &AlwaysValidationAbort, &prog).unwrap_err();
        assert_eq!(err, AbortReason::Validation, "not a blanket LockConflict");
        cluster.shutdown();
    }
}
