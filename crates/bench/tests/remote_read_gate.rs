//! Release-mode regression gate for the batched remote-read fan-out (PR 10).
//!
//! Runs the same fully distributed, fully remote YCSB cell with
//! `batch_remote_reads` on and off and gates on the *ratio* of remote round
//! trips per committed distributed transaction. Round trips are counted, not
//! timed, so the ratio is deterministic modulo abort noise — but the cell
//! still runs end-to-end worker threads, so it lives next to the other
//! release-mode gates and CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p primo-bench --test remote_read_gate -- --ignored
//! ```

use primo_bench::Scale;
use primo_repro::{Experiment, MetricsSnapshot, ProtocolKind};

fn fully_remote_cell(kind: ProtocolKind, batched: bool) -> MetricsSnapshot {
    Experiment::new()
        .protocol(kind)
        .scale(Scale {
            partitions: 4,
            workers_per_partition: 2,
            ycsb_keys_per_partition: 10_000,
            duration_ms: 150,
            warmup_ms: 30,
        })
        .fast_local()
        .seed(7)
        .ycsb_with(|y| {
            // 10-op transactions, all distributed, every op remote: the
            // acceptance cell from the issue.
            y.distributed_ratio = 1.0;
            y.remote_op_ratio = 1.0;
        })
        .tweak_cluster(move |c| c.batch_remote_reads = batched)
        .run()
}

#[test]
#[ignore = "end-to-end worker-thread run; CI runs it in release with --ignored"]
fn batching_at_least_halves_remote_round_trips_per_dist_txn() {
    for kind in [ProtocolKind::Primo, ProtocolKind::TwoPlNoWait] {
        let seq = fully_remote_cell(kind, false);
        let bat = fully_remote_cell(kind, true);
        assert!(
            seq.dist_committed > 0 && bat.dist_committed > 0,
            "{}: the cell must commit distributed transactions",
            kind.label()
        );
        let ratio = seq.remote_round_trips_per_dist_txn / bat.remote_round_trips_per_dist_txn;
        eprintln!(
            "{}: rt/dist-txn sequential {:.2}, batched {:.2} ({:.2}x), hit rate {:.1}%",
            kind.label(),
            seq.remote_round_trips_per_dist_txn,
            bat.remote_round_trips_per_dist_txn,
            ratio,
            bat.prefetch_hit_rate * 100.0
        );
        // A 10-op fully remote transaction pays ~10 read round trips
        // sequentially and ~1 batched; aborted attempts and commit rounds
        // dilute the ratio, so 2x is a wide floor that still catches the
        // fan-out silently degrading to per-record reads.
        assert!(
            ratio >= 2.0,
            "{}: batching advantage eroded below 2x ({ratio:.2}x)",
            kind.label()
        );
        // The prefetch buffer must actually serve the reads, not just
        // charge fewer messages.
        assert!(
            bat.prefetch_hit_rate > 0.5,
            "{}: prefetch hit rate collapsed ({:.2})",
            kind.label(),
            bat.prefetch_hit_rate
        );
        // Batching must never *add* messages when it is off.
        assert!(bat.remote_round_trips_per_dist_txn <= seq.remote_round_trips_per_dist_txn);
    }
}
