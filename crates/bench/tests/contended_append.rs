//! Release-mode regression gate for the pipelined WAL append (PR 7).
//!
//! Re-measures the contended RF 3 append against an in-test reconstruction
//! of the pre-pipeline shape (synchronous fan-out to every replica under
//! the append lock) and fails if the pipeline's advantage erodes below a
//! conservative floor. The comparison is a *ratio* on the same machine in
//! the same process, so it is robust to how fast the CI runner happens to
//! be — unlike an absolute ns bound.
//!
//! Timing-sensitive, so `#[ignore]` by default; debug builds would measure
//! the optimizer, not the code. CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p primo-bench --test contended_append -- --ignored
//! ```

use primo_repro::wal::{LogPayload, LoggedWrite, PartitionWal, ReplicatedLog};
use primo_repro::{PartitionId, TableId, TxnId, Value, WalConfig};
use std::sync::Arc;
use std::time::Instant;

/// The pre-PR-7 append shape: one lock held across the whole replica
/// fan-out, every appender paying one `append_in_term` per replica.
struct OldFanout {
    lock: std::sync::Mutex<()>,
    replicas: Vec<PartitionWal>,
}

impl OldFanout {
    fn rf3() -> Self {
        OldFanout {
            lock: std::sync::Mutex::new(()),
            replicas: (0..3)
                .map(|i| PartitionWal::new(PartitionId(0), if i == 0 { 100 } else { 700 }))
                .collect(),
        }
    }

    fn append(&self, payload: LogPayload) -> u64 {
        let payload = Arc::new(payload);
        let _guard = self.lock.lock().unwrap();
        for replica in &self.replicas[1..] {
            replica.append_in_term(0, Arc::clone(&payload));
        }
        self.replicas[0].append_in_term(0, payload)
    }
}

fn pipelined_rf3() -> ReplicatedLog {
    ReplicatedLog::new(
        PartitionId(0),
        WalConfig {
            replication_factor: 3,
            persist_delay_us: 100,
            replica_persist_delay_us: Some(200),
            ..WalConfig::default()
        },
        500,
        None,
    )
}

fn payload(seq: u64) -> LogPayload {
    LogPayload::TxnWrites {
        txn: TxnId::new(PartitionId(0), seq),
        ts: seq + 1,
        writes: vec![LoggedWrite::put(TableId(0), seq, Value::from_u64(seq))],
    }
}

/// Wall-clock ns/append across `threads` appenders; payloads are pre-built
/// outside the timed window (same methodology as `bench_matrix`).
fn measure(threads: u64, append: impl Fn(LogPayload) -> u64 + Sync) -> f64 {
    const TOTAL: u64 = 32_000;
    let per_thread = TOTAL / threads;
    let batches: Vec<Vec<LogPayload>> = (0..threads)
        .map(|t| {
            (0..per_thread)
                .map(|i| payload(t * per_thread + i))
                .collect()
        })
        .collect();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for batch in batches {
            let append = &append;
            scope.spawn(move || {
                for p in batch {
                    append(p);
                }
            });
        }
    });
    started.elapsed().as_nanos() as f64 / (per_thread * threads) as f64
}

fn median3(mut runs: [f64; 3]) -> f64 {
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[1]
}

#[test]
#[ignore = "timing-sensitive; CI runs it in release with --ignored"]
fn pipelined_append_beats_synchronous_fanout_under_contention() {
    // 4 appender threads: enough contention to exercise the sequencer lock
    // without drowning a small CI runner in scheduler noise the way 16
    // threads would.
    let threads = 4;
    let measure_old = || {
        let old = OldFanout::rf3();
        measure(threads, |p| old.append(p))
    };
    let measure_new = || {
        let log = pipelined_rf3();
        measure(threads, |p| log.append(p))
    };
    let old_ns = median3([measure_old(), measure_old(), measure_old()]);
    let new_ns = median3([measure_new(), measure_new(), measure_new()]);
    let speedup = old_ns / new_ns;
    eprintln!(
        "contended append rf=3 threads={threads}: \
         old {old_ns:.1} ns, pipelined {new_ns:.1} ns ({speedup:.2}x)"
    );
    // PR 7 measured ~2.8x on one core and ~4x uncontended; a pipeline
    // regression (fan-out creeping back onto the critical section, a
    // syscall per append) erases the whole gap, so 1.5x is a wide net
    // that still catches any real regression.
    assert!(
        speedup >= 1.5,
        "pipelined append lost its edge: old {old_ns:.1} ns vs new {new_ns:.1} ns \
         ({speedup:.2}x, want >= 1.5x)"
    );
}
