//! Micro-benchmarks of the building blocks on Primo's critical path: the
//! lock table, TicToc record operations, the Zipf generator, the WAL append
//! path and a small end-to-end single-transaction comparison of Primo
//! against a 2PC baseline (the per-transaction cost that Fig 4 aggregates
//! into throughput).
//!
//! The registry is offline in this environment, so instead of criterion this
//! uses a small built-in harness (`harness = false`): each benchmark is
//! calibrated to run for ~0.2 s and reports ns/op. Run with:
//!
//! ```text
//! cargo bench -p primo-bench
//! ```

use primo_repro::recovery::apply_replay;
use primo_repro::storage::{InsertSlot, LockMode, LockPolicy, PartitionStore, Record, Table};
use primo_repro::wal::{LogPayload, LoggedWrite, PartitionWal, ReplayBound, ReplicatedLog};
use primo_repro::{
    ClosureProgram, FastRng, PartitionId, Primo, ProtocolKind, TableId, TxnId, Value, ZipfGen,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Measure `f` with a calibrated iteration count and print ns/op.
fn bench(name: &str, mut f: impl FnMut()) {
    use std::time::{Duration, Instant};
    // Warm-up + calibration: find an iteration count that runs ~0.2 s.
    let mut iters: u64 = 8;
    loop {
        let started = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = started.elapsed();
        if elapsed >= Duration::from_millis(50) || iters >= 1 << 28 {
            let per_op = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<40} {per_op:>12.1} ns/op   ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

fn bench_lock_table() {
    let record = Record::new(Value::from_u64(0));
    let txn = primo_repro::TxnId::new(PartitionId(0), 1);
    bench("lock/exclusive_acquire_release", || {
        record.acquire(txn, LockMode::Exclusive, LockPolicy::NoWait);
        record.release(txn);
    });
    bench("lock/shared_acquire_release", || {
        record.acquire(txn, LockMode::Shared, LockPolicy::WaitDie);
        record.release(txn);
    });
}

fn bench_tictoc_record() {
    let record = Record::new(Value::zeroed(100));
    bench("record/read_snapshot", || {
        std::hint::black_box(record.read());
    });
    let mut ts = 1u64;
    bench("record/extend_rts", || {
        ts += 1;
        record.extend_rts(ts);
    });
    let v = Value::zeroed(100);
    let mut ts = 1u64;
    bench("record/install", || {
        ts += 1;
        record.install(v.clone(), ts);
    });
}

fn bench_zipf() {
    let zipf = ZipfGen::new(1_000_000, 0.6);
    let mut rng = FastRng::new(1);
    bench("zipf/sample_theta_0.6", || {
        std::hint::black_box(zipf.sample(&mut rng));
    });
    let uniform = ZipfGen::new(1_000_000, 0.0);
    bench("zipf/sample_uniform", || {
        std::hint::black_box(uniform.sample(&mut rng));
    });
}

fn bench_wal_append() {
    let wal = PartitionWal::new(PartitionId(0), 500);
    let mut wp = 0u64;
    bench("wal/append_watermark", || {
        wp += 1;
        wal.append(LogPayload::Watermark { wp });
    });
    let mut seq = 0u64;
    bench("wal/append_txn_writes", || {
        seq += 1;
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), seq),
            ts: seq,
            writes: vec![LoggedWrite::put(
                TableId(0),
                seq % 1_024,
                Value::from_u64(seq),
            )],
        });
    });
}

/// Tentpole of PR 7: [`ReplicatedLog::append`] is a two-stage pipeline —
/// the commit critical section only sequences (leader append + staging-ring
/// push under one lock) while a background pump ships staged entries to the
/// followers in batches. The pre-PR shape — fan-out to every replica under
/// the one append lock — is reproduced here verbatim so the two critical
/// sections race on identical replica sets (RF 3, realistic delays) at
/// 1 / 4 / 16 appender threads.
fn bench_contended_append() {
    use std::time::Instant;

    /// The pre-pipeline append path: one lock, `RF` replica appends inside
    /// it (exactly the old `ReplicatedLog::append` body).
    struct OldFanout {
        lock: std::sync::Mutex<()>,
        replicas: Vec<PartitionWal>,
    }

    impl OldFanout {
        fn rf3() -> Self {
            OldFanout {
                lock: std::sync::Mutex::new(()),
                replicas: (0..3)
                    .map(|i| PartitionWal::new(PartitionId(0), if i == 0 { 100 } else { 700 }))
                    .collect(),
            }
        }

        fn append(&self, payload: LogPayload) -> u64 {
            let payload = Arc::new(payload);
            let _guard = self.lock.lock().unwrap();
            for replica in &self.replicas[1..] {
                replica.append_in_term(0, Arc::clone(&payload));
            }
            self.replicas[0].append_in_term(0, payload)
        }
    }

    fn pipelined_rf3() -> ReplicatedLog {
        ReplicatedLog::new(
            PartitionId(0),
            primo_repro::WalConfig {
                replication_factor: 3,
                persist_delay_us: 100,
                replica_persist_delay_us: Some(200),
                ..primo_repro::WalConfig::default()
            },
            500,
            None,
        )
    }

    fn payload(seq: u64) -> LogPayload {
        LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), seq),
            ts: seq + 1,
            writes: vec![LoggedWrite::put(
                TableId(0),
                seq % 1_024,
                Value::from_u64(seq),
            )],
        }
    }

    fn contended(name: &str, threads: u64, append: impl Fn(u64) -> u64 + Sync) {
        const TOTAL: u64 = 64_000;
        let per_thread = TOTAL / threads;
        let started = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let append = &append;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        std::hint::black_box(append(t * per_thread + i));
                    }
                });
            }
        });
        let ops = per_thread * threads;
        let per_op = started.elapsed().as_nanos() as f64 / ops as f64;
        println!("{name:<40} {per_op:>12.1} ns/op   ({ops} iters)");
    }

    for threads in [1u64, 4, 16] {
        let old = OldFanout::rf3();
        contended(
            &format!("wal/contended_append_rf3_t{threads}_old"),
            threads,
            |seq| old.append(payload(seq)),
        );
        let new = pipelined_rf3();
        contended(
            &format!("wal/contended_append_rf3_t{threads}_new"),
            threads,
            |seq| new.append(payload(seq)),
        );
    }
}

/// Stage 2 of the append pipeline in isolation: delivering 64 sequenced
/// entries to one follower replica as a single batch
/// ([`PartitionWal::append_entries`], one lock acquisition) vs. the old
/// per-entry fan-out (64 acquisitions). Both passes pay for a fresh target
/// replica, so the difference is pure delivery cost.
fn bench_fanout_batching() {
    const BATCH: u64 = 64;
    let source = PartitionWal::new(PartitionId(0), 500);
    for seq in 0..BATCH {
        source.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), seq),
            ts: seq + 1,
            writes: vec![LoggedWrite::put(TableId(0), seq, Value::from_u64(seq))],
        });
    }
    let batch = source.entries_from(0);
    bench("wal/fanout_64_batched", || {
        let target = PartitionWal::new(PartitionId(0), 500);
        target.append_entries(&batch);
        std::hint::black_box(target.end_lsn());
    });
    bench("wal/fanout_64_per_entry", || {
        let target = PartitionWal::new(PartitionId(0), 500);
        for e in &batch {
            target.append_in_term(e.term, Arc::clone(&e.payload));
        }
        std::hint::black_box(target.end_lsn());
    });
}

fn bench_wal_durable_boundary() {
    // Satellite of the replicated-WAL refactor: the durable-boundary
    // lookups (`durable_lsn`, `latest_durable_watermark_at`,
    // `latest_durable_checkpoint`) used to reverse-scan the log — O(n) per
    // call on the volatile suffix, and the quorum computation calls
    // `durable_lsn` once per replica per query. `appended_at_us` is
    // monotone per log, so the boundary is now a `partition_point` binary
    // search. The naive reverse scan is reproduced here over the same
    // 100k entries for comparison.
    use primo_repro::common::sim_time::now_us;

    const ENTRIES: u64 = 100_000;
    // A huge persist delay keeps the whole log volatile: the worst case for
    // the naive scan (it walks all 100k entries before giving up) and the
    // realistic shape of a hot log right after a burst of appends.
    let wal = PartitionWal::new(PartitionId(0), u64::MAX / 4);
    for seq in 0..ENTRIES {
        wal.append(LogPayload::TxnWrites {
            txn: TxnId::new(PartitionId(0), seq),
            ts: seq + 1,
            writes: vec![LoggedWrite::put(
                TableId(0),
                seq % 512,
                Value::from_u64(seq),
            )],
        });
    }
    bench("wal/durable_lsn_100k_partition_point", || {
        std::hint::black_box(wal.durable_lsn());
    });
    let entries = wal.entries_from(0);
    let delay = wal.persist_delay_us();
    bench("wal/durable_lsn_100k_naive_rev_scan", || {
        let now = now_us();
        std::hint::black_box(
            entries
                .iter()
                .rev()
                .find(|e| e.appended_at_us.saturating_add(delay) <= now)
                .map(|e| e.lsn),
        );
    });
    bench("wal/latest_durable_watermark_100k", || {
        std::hint::black_box(wal.latest_durable_watermark());
    });
}

fn bench_log_txn_writes() {
    // The per-commit durability hot path: group a mixed write-set by
    // partition in one pass, capture before-images and append one entry per
    // involved partition — measured over a 4-partition write-set, where the
    // old O(partitions x writes) rescans hurt most.
    use primo_repro::runtime::{log_txn_writes, Cluster, WriteEntry};
    use primo_repro::ClusterConfig;

    let cluster = Cluster::new(ClusterConfig::for_tests(4));
    for p in 0..4u32 {
        for k in 0..64u64 {
            cluster
                .partition(PartitionId(p))
                .store
                .insert(TableId(0), k, Value::from_u64(k));
        }
    }
    let writes: Vec<WriteEntry> = (0..16u64)
        .map(|i| {
            WriteEntry::put(
                PartitionId((i % 4) as u32),
                TableId(0),
                i % 64,
                Value::from_u64(i),
            )
        })
        .collect();
    let mut seq = 1_000_000u64;
    bench("durability/log_txn_writes_16w_4p", || {
        seq += 1;
        log_txn_writes(&cluster, TxnId::new(PartitionId(0), seq), seq, &writes);
    });
    cluster.shutdown();
}

fn bench_checkpoint_and_replay() {
    // The recovery subsystem's two hot paths: folding a durable log into a
    // checkpoint image (checkpoint-write throughput) and replaying a durable
    // prefix into a wiped store (replay throughput).
    use primo_repro::wal::CheckpointImage;
    use primo_repro::{Checkpointer, LoggingScheme, WalConfig};

    const TXNS: u64 = 10_000;
    let fill = |wal: &ReplicatedLog| {
        let mut rng = FastRng::new(0x4ECC);
        for seq in 0..TXNS {
            wal.append(LogPayload::TxnWrites {
                txn: TxnId::new(PartitionId(0), seq),
                ts: seq + 1,
                writes: vec![LoggedWrite::put(
                    TableId(0),
                    rng.next_below(4_096),
                    Value::from_u64(seq),
                )],
            });
        }
    };
    let wal = ReplicatedLog::single(PartitionId(0), 0);
    fill(&wal);
    bench("recovery/replay_collect_10k_txns", || {
        std::hint::black_box(wal.replay_range(0, &ReplayBound::Ts(u64::MAX), None));
    });
    let txns = wal.replay_range(0, &ReplayBound::Ts(u64::MAX), None);
    bench("recovery/replay_apply_10k_txns", || {
        let store = PartitionStore::new(PartitionId(0));
        apply_replay(&store, &txns);
        std::hint::black_box(store.total_records());
    });
    // Checkpoint write: fold 10k durable entries over an empty base image.
    // CLV's bound is the durable LSN, so the whole log folds without any
    // background agent threads.
    let cfg = WalConfig {
        scheme: LoggingScheme::Clv,
        persist_delay_us: 0,
        ..Default::default()
    };
    let gc = primo_repro::wal::build_group_commit(
        1,
        cfg,
        primo_repro::net::DelayedBus::new(1, 10),
        primo_repro::wal::build_logs(1, cfg),
    );
    bench("recovery/checkpoint_fold_10k_txns", || {
        let wal = ReplicatedLog::single(PartitionId(0), 0);
        wal.append(LogPayload::Checkpoint {
            image: Arc::new(CheckpointImage::default()),
        });
        fill(&wal);
        std::hint::black_box(Checkpointer::tick(PartitionId(0), &wal, gc.as_ref()));
    });
    gc.shutdown();
}

fn bench_mvcc_versions() {
    // The MVCC hot paths the snapshot-read subsystem adds: pushing a new
    // committed version onto a bounded chain (every install now shifts the
    // prior version into history and may evict the oldest) and resolving a
    // read at a horizon — both at the newest version (the common case: the
    // horizon trails the writers by one interval) and at the oldest retained
    // one (the worst case before fallback).
    let record = Record::new(Value::zeroed(100));
    record.set_max_versions(4);
    let v = Value::zeroed(100);
    let mut ts = 0u64;
    bench("mvcc/version_push_bounded_4", || {
        ts += 2;
        record.install(v.clone(), ts);
    });
    bench("mvcc/snapshot_lookup_newest", || {
        std::hint::black_box(record.read_at(ts));
    });
    // ts - 6 lands on the oldest of the 4 retained versions (spaced 2 apart).
    let oldest = ts - 6;
    bench("mvcc/snapshot_lookup_oldest_retained", || {
        std::hint::black_box(record.read_at(oldest));
    });

    // End-to-end: a declared read-only two-partition transaction through the
    // snapshot path vs the same program through the protocol.
    let primo = loaded_primo(ProtocolKind::Primo);
    let session = primo.session();
    let mut rng = FastRng::new(7);
    bench("mvcc/read_only_txn_snapshot", || {
        let (a, b) = (rng.next_below(1_000), rng.next_below(1_000));
        let program = ClosureProgram::new(PartitionId(0), move |ctx| {
            ctx.read(PartitionId(0), TableId(0), a)?;
            ctx.read(PartitionId(1), TableId(0), b)?;
            Ok(())
        })
        .read_only();
        session.run_program(&program).unwrap();
    });
    bench("mvcc/read_only_txn_protocol", || {
        let (a, b) = (rng.next_below(1_000), rng.next_below(1_000));
        let program = ClosureProgram::new(PartitionId(0), move |ctx| {
            ctx.read(PartitionId(0), TableId(0), a)?;
            ctx.read(PartitionId(1), TableId(0), b)?;
            Ok(())
        });
        session.run_program(&program).unwrap();
    });
    primo.shutdown();
}

fn bench_insert_delete_churn() {
    // The record-lifecycle hot loop: claim a slot (create or revive), commit
    // the insert, tombstone it, reclaim the tombstone from the table shard —
    // with concurrent readers and a sweeper hammering the same (deliberately
    // few) shards, so the shard-lock serialization is actually exercised.
    let table = Arc::new(Table::with_shards(4));
    for k in 0..1_024u64 {
        table.insert(k, Value::from_u64(k));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut contenders = Vec::new();
    for t in 0..2 {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        contenders.push(std::thread::spawn(move || {
            let mut rng = FastRng::new(0xC0_47E0 + t);
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..64 {
                    std::hint::black_box(table.get(rng.next_below(2_048)));
                }
                // A background sweep competes with inline reclaims.
                std::hint::black_box(table.reclaim_tombstones());
            }
        }));
    }
    let mut seq = 0u64;
    bench("table/insert_delete_reclaim_churn", || {
        seq += 1;
        let txn = TxnId::new(PartitionId(0), seq);
        let key = 1_024 + (seq % 1_024);
        let record = match table.insert_slot(key, txn) {
            InsertSlot::Existing(r) | InsertSlot::Created(r) | InsertSlot::Revived(r) => r,
            InsertSlot::Busy => unreachable!("single writer"),
        };
        record.install_next_version(Value::from_u64(seq));
        record.install_tombstone_next_version();
        std::hint::black_box(table.reclaim(key));
    });
    stop.store(true, Ordering::Relaxed);
    for c in contenders {
        c.join().unwrap();
    }
}

fn bench_txn_churn() {
    // End-to-end lifecycle churn through the facade: one transaction inserts
    // a fresh key and deletes the key a previous iteration inserted.
    let primo = loaded_primo(ProtocolKind::Primo);
    let session = primo.session();
    let mut seq = 0u64;
    bench("txn/insert_delete_churn_primo", || {
        seq += 1;
        let insert_key = 10_000 + seq;
        let delete_prev = seq > 1;
        let program = ClosureProgram::new(PartitionId(0), move |ctx| {
            ctx.insert(PartitionId(0), TableId(0), insert_key, Value::from_u64(1))?;
            if delete_prev {
                ctx.delete(PartitionId(0), TableId(0), insert_key - 1)?;
            }
            Ok(())
        });
        session.run_program(&program).unwrap();
    });
    primo.shutdown();
}

fn loaded_primo(kind: ProtocolKind) -> Primo {
    let primo = Primo::builder()
        .partitions(2)
        .protocol(kind)
        .fast_local()
        .build();
    let session = primo.session();
    for p in 0..2u32 {
        for k in 0..1_000u64 {
            session.load(PartitionId(p), TableId(0), k, Value::from_u64(0));
        }
    }
    primo
}

fn bench_single_txn() {
    // Per-transaction cost of a distributed read-modify-write pair under
    // Primo (no 2PC) vs 2PL+2PC — the microscopic version of Fig 4a.
    for (name, kind) in [
        ("distributed_txn/primo_wcf", ProtocolKind::Primo),
        ("distributed_txn/twopl_2pc", ProtocolKind::TwoPlNoWait),
    ] {
        let primo = loaded_primo(kind);
        let session = primo.session();
        let mut rng = FastRng::new(3);
        bench(name, || {
            let (a, b) = (rng.next_below(1_000), rng.next_below(1_000));
            let program = ClosureProgram::new(PartitionId(0), move |ctx| {
                for (p, k) in [(PartitionId(0), a), (PartitionId(1), b)] {
                    let v = ctx.read(p, TableId(0), k)?.as_u64();
                    ctx.write(p, TableId(0), k, Value::from_u64(v + 1))?;
                }
                Ok(())
            });
            session.run_program(&program).unwrap();
        });
        primo.shutdown();
    }
}

fn main() {
    println!("primo micro-benchmarks (ns/op, built-in harness)");
    bench_lock_table();
    bench_tictoc_record();
    bench_zipf();
    bench_wal_append();
    bench_contended_append();
    bench_fanout_batching();
    bench_wal_durable_boundary();
    bench_log_txn_writes();
    bench_checkpoint_and_replay();
    bench_mvcc_versions();
    bench_insert_delete_churn();
    bench_single_txn();
    bench_txn_churn();
}
