//! Criterion micro-benchmarks of the building blocks on Primo's critical
//! path: the lock table, TicToc record operations, the Zipf generator, the
//! WAL append path and a small end-to-end single-transaction comparison of
//! Primo against a 2PC baseline (the per-transaction cost that Fig 4
//! aggregates into throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use primo_baselines::TwoPlProtocol;
use primo_common::config::ClusterConfig;
use primo_common::{FastRng, PartitionId, TableId, TxnId, Value, ZipfGen};
use primo_core::PrimoProtocol;
use primo_runtime::cluster::Cluster;
use primo_runtime::txn::IncrementProgram;
use primo_runtime::worker::run_single_txn;
use primo_storage::{LockMode, LockPolicy, Record};
use primo_wal::{LogPayload, PartitionWal};
use std::sync::Arc;

fn bench_lock_table(c: &mut Criterion) {
    let record = Record::new(Value::from_u64(0));
    let txn = TxnId::new(PartitionId(0), 1);
    c.bench_function("lock/exclusive_acquire_release", |b| {
        b.iter(|| {
            record.acquire(txn, LockMode::Exclusive, LockPolicy::NoWait);
            record.release(txn);
        })
    });
    c.bench_function("lock/shared_acquire_release", |b| {
        b.iter(|| {
            record.acquire(txn, LockMode::Shared, LockPolicy::WaitDie);
            record.release(txn);
        })
    });
}

fn bench_tictoc_record(c: &mut Criterion) {
    let record = Record::new(Value::zeroed(100));
    c.bench_function("record/read_snapshot", |b| b.iter(|| record.read()));
    c.bench_function("record/extend_rts", |b| {
        let mut ts = 1u64;
        b.iter(|| {
            ts += 1;
            record.extend_rts(ts);
        })
    });
    c.bench_function("record/install", |b| {
        let v = Value::zeroed(100);
        let mut ts = 1u64;
        b.iter(|| {
            ts += 1;
            record.install(v.clone(), ts);
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = ZipfGen::new(1_000_000, 0.6);
    let mut rng = FastRng::new(1);
    c.bench_function("zipf/sample_theta_0.6", |b| b.iter(|| zipf.sample(&mut rng)));
    let uniform = ZipfGen::new(1_000_000, 0.0);
    c.bench_function("zipf/sample_uniform", |b| b.iter(|| uniform.sample(&mut rng)));
}

fn bench_wal_append(c: &mut Criterion) {
    let wal = PartitionWal::new(PartitionId(0), 500);
    c.bench_function("wal/append_watermark", |b| {
        let mut wp = 0u64;
        b.iter(|| {
            wp += 1;
            wal.append(LogPayload::Watermark { wp })
        })
    });
}

fn loaded_cluster() -> Arc<Cluster> {
    let cluster = Cluster::new(ClusterConfig::for_tests(2));
    for p in 0..2u32 {
        for k in 0..1_000u64 {
            cluster
                .partition(PartitionId(p))
                .store
                .insert(TableId(0), k, Value::from_u64(0));
        }
    }
    cluster
}

fn bench_single_txn(c: &mut Criterion) {
    // Per-transaction cost of a distributed read-modify-write pair under
    // Primo (no 2PC) vs 2PL+2PC — the microscopic version of Fig 4a.
    let cluster = loaded_cluster();
    let primo = PrimoProtocol::full();
    let twopl = TwoPlProtocol::no_wait();
    let mut group = c.benchmark_group("distributed_txn");
    group.sample_size(30);
    group.bench_function("primo_wcf", |b| {
        let mut rng = FastRng::new(3);
        b.iter_batched(
            || IncrementProgram {
                home: PartitionId(0),
                accesses: vec![
                    (PartitionId(0), TableId(0), rng.next_below(1_000)),
                    (PartitionId(1), TableId(0), rng.next_below(1_000)),
                ],
            },
            |prog| run_single_txn(&cluster, &primo, &prog).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("twopl_2pc", |b| {
        let mut rng = FastRng::new(4);
        b.iter_batched(
            || IncrementProgram {
                home: PartitionId(0),
                accesses: vec![
                    (PartitionId(0), TableId(0), rng.next_below(1_000)),
                    (PartitionId(1), TableId(0), rng.next_below(1_000)),
                ],
            },
            |prog| run_single_txn(&cluster, &twopl, &prog).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lock_table,
    bench_tictoc_record,
    bench_zipf,
    bench_wal_append,
    bench_single_txn
);
criterion_main!(benches);
