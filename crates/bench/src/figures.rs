//! One harness per figure of the paper's evaluation (§6).
//!
//! Every function prints the series the corresponding figure plots and
//! returns nothing; the `figures` binary dispatches to them. Absolute numbers
//! differ from the paper (simulated cluster vs. a real one); the shapes —
//! which protocol wins, by roughly what factor, where crossovers happen — are
//! what EXPERIMENTS.md compares.
//!
//! All runs go through [`Experiment`], so a figure is exactly "a loop over
//! protocol kinds and one swept knob".

use primo_repro::core::analysis::{self, ModelParams};
use primo_repro::{
    CommitMode, CrashPlan, Experiment, LoggingScheme, MetricsSnapshot, PartitionId, Phase,
    ProtocolKind, Scale,
};
use std::time::Duration;

const HEADLINE: [ProtocolKind; 6] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Primo,
];

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

fn print_row(label: &str, snap: &MetricsSnapshot) {
    println!(
        "{label:<22} {:>10.1} ktps   abort {:>5.1}%   lat {:>7.2} ms   p99 {:>8.2} ms",
        snap.ktps(),
        snap.abort_rate * 100.0,
        snap.mean_latency_ms,
        snap.p99_latency_ms
    );
}

/// The driver's live metrics timeline: one row per ~100 ms window with the
/// window's committed TPS, abort rate and p99. Around a crash plan this
/// shows the dip-and-recovery shape a single whole-run aggregate averages
/// away.
fn print_timeline(label: &str, snap: &MetricsSnapshot) {
    if snap.timeline.is_empty() {
        return;
    }
    println!("{label} live timeline ({} windows):", snap.timeline.len());
    println!(
        "  {:>8} {:>8} {:>10} {:>9} {:>8} {:>9}",
        "t(ms)", "win(ms)", "ktps", "committed", "abort%", "p99(ms)"
    );
    for w in &snap.timeline {
        println!(
            "  {:>8.0} {:>8.0} {:>10.1} {:>9} {:>8.1} {:>9.2}",
            w.start_us as f64 / 1000.0,
            w.len_us as f64 / 1000.0,
            w.tps / 1000.0,
            w.committed,
            w.abort_rate * 100.0,
            w.p99_latency_ms
        );
    }
}

/// Per-reason abort counts (e.g. `WaitDie=123 Validation=4 NotFound=1`):
/// lifecycle regressions surface here instead of hiding in the abort total.
fn print_abort_breakdown(label: &str, snap: &MetricsSnapshot) {
    let breakdown = snap.abort_breakdown();
    if breakdown.is_empty() {
        println!("{label:<22} aborts: none");
        return;
    }
    let parts: Vec<String> = breakdown
        .iter()
        .map(|(reason, count)| format!("{reason}={count}"))
        .collect();
    println!("{label:<22} aborts: {}", parts.join(" "));
}

/// Remote-read economics of a run: round trips charged per committed
/// distributed transaction, the batched-prefetch hit rate and the
/// distributed-only tail latency. One row per protocol in fig 4/5.
fn print_remote_reads(label: &str, snap: &MetricsSnapshot) {
    println!(
        "{label:<22} {:>8.2} rt/dist-txn   hit {:>5.1}%   dist p99 {:>8.2} ms   ({} dist txns)",
        snap.remote_round_trips_per_dist_txn,
        snap.prefetch_hit_rate * 100.0,
        snap.dist_txn_p99_ms,
        snap.dist_committed
    );
}

fn print_breakdown(label: &str, snap: &MetricsSnapshot) {
    let mut parts = String::new();
    for p in Phase::ALL {
        let v = snap.phase(p);
        if v > 0.0005 {
            parts.push_str(&format!("{}={:.2}ms ", p.label(), v));
        }
    }
    println!("{label:<22} {parts}");
}

/// Default-setting YCSB run for one protocol at one scale.
fn ycsb(kind: ProtocolKind, scale: &Scale) -> MetricsSnapshot {
    Experiment::new().protocol(kind).scale(*scale).run()
}

/// Default-setting TPC-C run for one protocol at one scale.
fn tpcc(kind: ProtocolKind, scale: &Scale) -> MetricsSnapshot {
    Experiment::new()
        .protocol(kind)
        .scale(*scale)
        .tpcc_with(|_| {})
        .run()
}

/// Fig. 4: YCSB default setting — throughput, factor breakdown, latency
/// breakdown and tail latency.
pub fn fig4(scale: &Scale) {
    header("Fig 4a: YCSB throughput (default setting)");
    let mut snaps = Vec::new();
    for kind in HEADLINE {
        let snap = ycsb(kind, scale);
        print_row(kind.label(), &snap);
        snaps.push((kind, snap));
    }

    header("Fig 4a': abort breakdown by reason");
    for (kind, snap) in &snaps {
        print_abort_breakdown(kind.label(), snap);
    }

    header("Fig 4b: factor breakdown (normalised to Sundial)");
    let sundial = snaps
        .iter()
        .find(|(k, _)| *k == ProtocolKind::Sundial)
        .map(|(_, s)| s.ktps())
        .unwrap_or(1.0);
    for kind in [
        ProtocolKind::Sundial,
        ProtocolKind::PrimoNoWcfNoWm,
        ProtocolKind::PrimoNoWm,
        ProtocolKind::Primo,
    ] {
        let snap = if let Some((_, s)) = snaps.iter().find(|(k, _)| *k == kind) {
            s.clone()
        } else {
            ycsb(kind, scale)
        };
        println!(
            "{:<22} {:>10.1} ktps   {:.2}x vs Sundial",
            kind.label(),
            snap.ktps(),
            snap.ktps() / sundial.max(1e-9)
        );
    }

    header("Fig 4c: latency breakdown (ms per committed txn)");
    for (kind, snap) in &snaps {
        print_breakdown(kind.label(), snap);
    }

    header("Fig 4d: 99th-percentile latency (ms)");
    for (kind, snap) in &snaps {
        println!("{:<22} {:>8.2} ms", kind.label(), snap.p99_latency_ms);
    }

    header("Fig 4e: remote-read batching (round trips / dist txn, prefetch hits)");
    for (kind, snap) in &snaps {
        print_remote_reads(kind.label(), snap);
    }
}

/// Fig. 5: the same four panels on TPC-C.
pub fn fig5(scale: &Scale) {
    header("Fig 5a: TPC-C throughput (default setting)");
    let mut snaps = Vec::new();
    for kind in HEADLINE {
        let snap = tpcc(kind, scale);
        print_row(kind.label(), &snap);
        snaps.push((kind, snap));
    }

    header("Fig 5a': abort breakdown by reason");
    for (kind, snap) in &snaps {
        print_abort_breakdown(kind.label(), snap);
    }

    header("Fig 5b: factor breakdown (normalised to Sundial)");
    let sundial = snaps
        .iter()
        .find(|(k, _)| *k == ProtocolKind::Sundial)
        .map(|(_, s)| s.ktps())
        .unwrap_or(1.0);
    for kind in [
        ProtocolKind::Sundial,
        ProtocolKind::PrimoNoWcfNoWm,
        ProtocolKind::PrimoNoWm,
        ProtocolKind::Primo,
    ] {
        let snap = if let Some((_, s)) = snaps.iter().find(|(k, _)| *k == kind) {
            s.clone()
        } else {
            tpcc(kind, scale)
        };
        println!(
            "{:<22} {:>10.1} ktps   {:.2}x vs Sundial",
            kind.label(),
            snap.ktps(),
            snap.ktps() / sundial.max(1e-9)
        );
    }

    header("Fig 5c: latency breakdown (ms per committed txn)");
    for (kind, snap) in &snaps {
        print_breakdown(kind.label(), snap);
    }

    header("Fig 5d: 99th-percentile latency (ms)");
    for (kind, snap) in &snaps {
        println!("{:<22} {:>8.2} ms", kind.label(), snap.p99_latency_ms);
    }

    header("Fig 5e: remote-read batching (round trips / dist txn, prefetch hits)");
    for (kind, snap) in &snaps {
        print_remote_reads(kind.label(), snap);
    }
}

/// Fig. 6: impact of contention (YCSB skew 0–0.99): throughput + abort rate.
pub fn fig6(scale: &Scale) {
    header("Fig 6: impact of contention (YCSB skew sweep)");
    let skews = [0.0, 0.2, 0.4, 0.6, 0.8, 0.99];
    println!(
        "{:<22} {}",
        "protocol",
        skews.map(|s| format!("{s:>8.2}")).join(" ")
    );
    for kind in HEADLINE {
        let mut tputs = Vec::new();
        let mut aborts = Vec::new();
        for skew in skews {
            let snap = Experiment::new()
                .protocol(kind)
                .scale(*scale)
                .ycsb_with(move |y| y.zipf_theta = skew)
                .run();
            tputs.push(format!("{:>8.1}", snap.ktps()));
            aborts.push(format!("{:>8.3}", snap.abort_rate));
        }
        println!("{:<22} {}   (ktps)", kind.label(), tputs.join(" "));
        println!("{:<22} {}   (abort rate)", "", aborts.join(" "));
    }
}

/// Fig. 7: impact of the ratio of distributed transactions under low and
/// high contention.
pub fn fig7(scale: &Scale) {
    let ratios = [0.05, 0.2, 0.4, 0.6, 0.8, 1.0];
    for (title, skew) in [
        ("Fig 7a: low contention (skew 0.0)", 0.0),
        ("Fig 7b: high contention (skew 0.9)", 0.9),
    ] {
        header(title);
        println!(
            "{:<22} {}",
            "protocol",
            ratios
                .map(|r| format!("{:>8}", format!("{}%", (r * 100.0) as u32)))
                .join(" ")
        );
        for kind in HEADLINE {
            let mut row = Vec::new();
            for r in ratios {
                let snap = Experiment::new()
                    .protocol(kind)
                    .scale(*scale)
                    .ycsb_with(move |y| {
                        y.zipf_theta = skew;
                        y.distributed_ratio = r;
                    })
                    .run();
                row.push(format!("{:>8.1}", snap.ktps()));
            }
            println!("{:<22} {}", kind.label(), row.join(" "));
        }
    }
}

/// Fig. 8: impact of the read-write ratio at 20% and 80% distributed.
pub fn fig8(scale: &Scale) {
    let write_pcts = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    for (title, dist) in [
        ("Fig 8a: 20% distributed", 0.2),
        ("Fig 8b: 80% distributed", 0.8),
    ] {
        header(title);
        println!(
            "{:<22} {}",
            "protocol (% writes)",
            write_pcts
                .map(|w| format!("{:>8}", format!("{}%", (w * 100.0) as u32)))
                .join(" ")
        );
        for kind in HEADLINE {
            let mut row = Vec::new();
            for w in write_pcts {
                let snap = Experiment::new()
                    .protocol(kind)
                    .scale(*scale)
                    .ycsb_with(move |y| {
                        y.distributed_ratio = dist;
                        y.read_ratio = 1.0 - w;
                    })
                    .run();
                row.push(format!("{:>8.1}", snap.ktps()));
            }
            println!("{:<22} {}", kind.label(), row.join(" "));
        }
    }
}

/// Fig. 9: impact of the blind-write ratio (Primo vs Sundial).
pub fn fig9(scale: &Scale) {
    header("Fig 9: impact of the blind-write ratio (Primo vs Sundial)");
    let ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    println!(
        "{:<22} {}",
        "protocol",
        ratios
            .map(|r| format!("{:>8}", format!("{}%", (r * 100.0) as u32)))
            .join(" ")
    );
    for kind in [ProtocolKind::Primo, ProtocolKind::Sundial] {
        let mut row = Vec::new();
        for r in ratios {
            let snap = Experiment::new()
                .protocol(kind)
                .scale(*scale)
                .ycsb_with(move |y| y.blind_write_ratio = r)
                .run();
            row.push(format!("{:>8.1}", snap.ktps()));
        }
        println!("{:<22} {}", kind.label(), row.join(" "));
    }
}

/// Fig. 10: impact of the number of warehouses per partition in TPC-C.
pub fn fig10(scale: &Scale) {
    header("Fig 10: TPC-C warehouses per partition");
    let warehouses = [1u64, 8, 16, 32, 64, 128];
    println!(
        "{:<22} {}",
        "protocol",
        warehouses.map(|w| format!("{w:>8}")).join(" ")
    );
    for kind in HEADLINE {
        let mut row = Vec::new();
        for w in warehouses {
            let snap = Experiment::new()
                .protocol(kind)
                .scale(*scale)
                .tpcc_with(move |t| t.warehouses_per_partition = w)
                .run();
            row.push(format!("{:>8.1}", snap.ktps()));
        }
        println!("{:<22} {}", kind.label(), row.join(" "));
    }
}

/// Fig. 11: logging schemes (CLV vs COCO vs Watermark) under each
/// concurrency-control protocol, YCSB and TPC-C.
pub fn fig11(scale: &Scale) {
    let protocols = [
        ProtocolKind::TwoPlNoWait,
        ProtocolKind::TwoPlWaitDie,
        ProtocolKind::Silo,
        ProtocolKind::Sundial,
        ProtocolKind::Primo,
    ];
    let schemes = [
        LoggingScheme::Clv,
        LoggingScheme::CocoEpoch,
        LoggingScheme::Watermark,
    ];
    for (title, use_tpcc) in [("Fig 11a: YCSB", false), ("Fig 11b: TPC-C", true)] {
        header(title);
        println!(
            "{:<22} {:>10} {:>10} {:>10}",
            "protocol", "CLV", "COCO", "Watermark"
        );
        for kind in protocols {
            let mut row = Vec::new();
            for scheme in schemes {
                let exp = Experiment::new()
                    .protocol(kind)
                    .scale(*scale)
                    .logging(scheme);
                let exp = if use_tpcc { exp.tpcc_with(|_| {}) } else { exp };
                row.push(format!("{:>10.1}", exp.run().ktps()));
            }
            println!("{:<22} {}", kind.label(), row.join(" "));
        }
    }
}

/// Fig. 12: watermark interval / epoch size trade-off: latency, crash-abort
/// rate (a partition is killed mid-run and rebuilt from checkpoint +
/// durable-log replay), throughput, recovery latency, replayed transactions
/// and the post-recovery throughput dip — WM vs COCO, both over Primo's WCF
/// concurrency control.
pub fn fig12(scale: &Scale) {
    header("Fig 12: watermark interval / epoch size (Primo CC under WM vs COCO)");
    let sizes_ms = [20u64, 40, 60, 80, 100];
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12} {:>13} {:>10} {:>12} {:>14} {:>8} {:>13} {:>13} {:>7}",
        "scheme",
        "size(ms)",
        "latency(ms)",
        "crash-abort",
        "ktps",
        "recovery(ms)",
        "replayed",
        "compensated",
        "post-rec ktps",
        "ldr-chg",
        "repl-lag(us)",
        "app-wait(us)",
        "batch"
    );
    for scheme in [LoggingScheme::Watermark, LoggingScheme::CocoEpoch] {
        for size in sizes_ms {
            let duration_ms = scale.duration_ms.max(3 * size);
            let snap = Experiment::new()
                .protocol(ProtocolKind::Primo)
                .scale(*scale)
                .duration_ms(duration_ms)
                .checkpoint_interval_ms(size.max(duration_ms / 4))
                .crash(CrashPlan::partition_loss(
                    PartitionId(1),
                    Duration::from_millis(duration_ms / 2),
                    Duration::from_millis(20),
                ))
                .logging(scheme)
                .wal_interval_ms(size)
                .run();
            println!(
                "{:<12} {:>10} {:>12.2} {:>14.4} {:>12.1} {:>13.2} {:>10} {:>12} {:>14.1} {:>8} {:>13} {:>13} {:>7.1}",
                scheme.label(),
                size,
                snap.mean_latency_ms,
                snap.crash_abort_rate,
                snap.ktps(),
                snap.recovery_time_us as f64 / 1000.0,
                snap.replayed_txns,
                snap.compensated_txns,
                snap.post_recovery_tps / 1000.0,
                snap.leader_changes,
                snap.replication_lag_us,
                snap.wal_append_wait_us,
                snap.replication_batch_len
            );
            // One representative cell per scheme gets the windowed timeline:
            // the crash-dip / recovery-ramp shape is the point of the figure
            // and invisible in the whole-run aggregates above.
            if size == 60 {
                print_timeline(scheme.label(), &snap);
            }
        }
    }
    println!(
        "(recovery = wipe + checkpoint restore + durable-log replay; the partition stays\n\
         unreachable until the replay completes. compensated = crash-rolled-back txns whose\n\
         installed writes on surviving partitions were undone via before-images.\n\
         ldr-chg = replicated-log leader hand-offs; repl-lag = append-to-quorum-ack delay,\n\
         the local persist delay when the log is single-copy. app-wait = total time committers\n\
         spent blocked on a log sequencer; batch = mean replication-pump batch length)"
    );

    header("Fig 12c: atomic-commit mode under a coordinator crash (2PL(NW), 3 log replicas)");
    println!(
        "{:<12} {:>10} {:>11} {:>16} {:>15} {:>9} {:>9}",
        "mode", "ktps", "decisions", "decide-mean(us)", "decide-p99(us)", "in-doubt", "orphaned"
    );
    for mode in [CommitMode::TwoPc, CommitMode::PaxosCommit] {
        let snap = Experiment::new()
            .protocol(ProtocolKind::TwoPlNoWait)
            .scale(*scale)
            .commit_mode(mode)
            .replication_factor(3)
            .crash(CrashPlan::coordinator(
                PartitionId(0),
                Duration::from_millis(scale.duration_ms / 2),
            ))
            .run();
        println!(
            "{:<12} {:>10.1} {:>11} {:>16.1} {:>15} {:>9} {:>9}",
            mode.label(),
            snap.ktps(),
            snap.commit_decisions,
            snap.commit_decide_mean_us,
            snap.commit_decide_p99_us,
            snap.in_doubt_resolved,
            snap.orphaned_txns
        );
    }
    println!(
        "(a one-shot coordinator crash fires between the vote round and the decision.\n\
         Classic 2PC orphans the in-doubt transaction — its locks leak and later\n\
         conflicting transactions block. Paxos Commit terminates it from the\n\
         quorum-durable vote set: in-doubt resolved, nothing orphaned. decide = the\n\
         prepare-to-decision latency the second 2PC round trip used to spend)"
    );
}

/// Fig. 13: lagging watermarks/epochs: (a) delayed control messages from one
/// partition; (b) a slow partition, with and without force-update.
pub fn fig13(scale: &Scale) {
    header("Fig 13a: control-message delay from one partition");
    let delays_ms = [0u64, 5, 10, 20, 30];
    println!(
        "{:<26} {}",
        "scheme",
        delays_ms.map(|d| format!("{d:>8}ms")).join(" ")
    );
    for (label, scheme, force) in [
        ("Watermark", LoggingScheme::Watermark, true),
        ("Watermark(no force)", LoggingScheme::Watermark, false),
        ("COCO", LoggingScheme::CocoEpoch, false),
    ] {
        let mut tput = Vec::new();
        let mut lat = Vec::new();
        for d in delays_ms {
            let snap = Experiment::new()
                .protocol(ProtocolKind::Primo)
                .scale(*scale)
                .lag_partition(PartitionId(1), d * 1000)
                .logging(scheme)
                .tweak_cluster(move |c| c.wal.force_update = force)
                .run();
            tput.push(format!("{:>9.1}", snap.ktps()));
            lat.push(format!("{:>9.2}", snap.mean_latency_ms));
        }
        println!("{label:<26} {}  (ktps)", tput.join(" "));
        println!("{:<26} {}  (latency ms)", "", lat.join(" "));
    }

    header("Fig 13b: slow partition (masked cores)");
    let slowdowns_us = [0u64, 50, 100, 200, 400];
    println!(
        "{:<26} {}",
        "scheme",
        slowdowns_us.map(|s| format!("{s:>8}us")).join(" ")
    );
    for (label, force) in [("Watermark", true), ("Watermark(no force)", false)] {
        let mut lat = Vec::new();
        let mut tput = Vec::new();
        for s in slowdowns_us {
            let snap = Experiment::new()
                .protocol(ProtocolKind::Primo)
                .scale(*scale)
                .slow_partition(PartitionId(1), s)
                .logging(LoggingScheme::Watermark)
                .tweak_cluster(move |c| c.wal.force_update = force)
                .run();
            lat.push(format!("{:>9.2}", snap.mean_latency_ms));
            tput.push(format!("{:>9.1}", snap.ktps()));
        }
        println!("{label:<26} {}  (latency ms)", lat.join(" "));
        println!("{:<26} {}  (ktps)", "", tput.join(" "));
    }
}

/// Fig. 14: scalability with the number of partitions (YCSB and TPC-C),
/// including Primo with COCO group commit ("Primo(COCO)").
pub fn fig14(scale: &Scale) {
    let partition_counts = [1usize, 2, 4, 8, 12, 16];
    for (title, use_tpcc) in [
        ("Fig 14a: YCSB scalability", false),
        ("Fig 14b: TPC-C scalability", true),
    ] {
        header(title);
        println!(
            "{:<22} {}",
            "protocol",
            partition_counts.map(|n| format!("{n:>8}")).join(" ")
        );
        let mut kinds: Vec<(String, ProtocolKind, Option<LoggingScheme>)> = HEADLINE
            .iter()
            .map(|k| (k.label().to_string(), *k, None))
            .collect();
        kinds.push((
            "Primo(COCO)".to_string(),
            ProtocolKind::Primo,
            Some(LoggingScheme::CocoEpoch),
        ));
        for (label, kind, scheme_override) in kinds {
            let mut row = Vec::new();
            for n in partition_counts {
                let mut exp = Experiment::new()
                    .protocol(kind)
                    .scale(scale.with_partitions(n));
                if let Some(scheme) = scheme_override {
                    exp = exp.logging(scheme);
                }
                if use_tpcc {
                    exp = exp.tpcc_with(|_| {});
                }
                row.push(format!("{:>8.1}", exp.run().ktps()));
            }
            println!("{label:<22} {}", row.join(" "));
        }
    }
}

/// Fig. 15: comparison with TAPIR (single worker per partition), low/high
/// contention × 20 %/80 % distributed.
pub fn fig15(scale: &Scale) {
    header("Fig 15: Primo vs TAPIR (1 worker thread per partition)");
    println!(
        "{:<10} {:<18} {:>10} {:>12} {:>12} {:>12}",
        "protocol", "setting", "ktps", "avg lat(ms)", "p99 lat(ms)", "abort rate"
    );
    for (contention, skew) in [("low", 0.0), ("high", 0.9)] {
        for dist in [0.2, 0.8] {
            for kind in [ProtocolKind::Primo, ProtocolKind::Tapir] {
                let snap = Experiment::new()
                    .protocol(kind)
                    .scale(scale.with_workers(1))
                    .ycsb_with(move |y| {
                        y.zipf_theta = skew;
                        y.distributed_ratio = dist;
                    })
                    .run();
                println!(
                    "{:<10} {:<18} {:>10.1} {:>12.2} {:>12.2} {:>12.3}",
                    kind.label(),
                    format!("{contention}, {}% dist", (dist * 100.0) as u32),
                    snap.ktps(),
                    snap.mean_latency_ms,
                    snap.p99_latency_ms,
                    snap.abort_rate
                );
            }
        }
    }
}

/// Fig. 16 (this repro's extension, not in the paper): read-only throughput
/// scaling with MVCC snapshot reads vs the validate-everything baseline.
///
/// Sweeps the YCSB read ratio upward; with 10 ops per transaction a read
/// ratio `r` makes a fraction `r^10` of the generated transactions fully
/// read-only, so the right end of the sweep is dominated by declared
/// read-only transactions. Each point runs twice — snapshot reads enabled
/// (declared read-only transactions resolve lock-free at the durable
/// group-commit horizon) and disabled (every transaction validates through
/// the protocol) — and reports the MVCC bookkeeping the run produced:
/// `snap-tps` (committed snapshot reads per second) and `pruned` (history
/// versions GC'd by the checkpointer at the horizon bound).
pub fn fig16(scale: &Scale) {
    header("Fig 16: read-only scaling (MVCC snapshot reads vs validate-everything)");
    let read_ratios = [0.5, 0.8, 0.9, 0.95, 1.0];
    println!(
        "{:<30} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>13} {:>7}",
        "protocol / mode",
        "reads",
        "ktps",
        "p99(ms)",
        "snap-tps",
        "snaps",
        "pruned",
        "app-wait(us)",
        "batch"
    );
    for kind in [
        ProtocolKind::Primo,
        ProtocolKind::Sundial,
        ProtocolKind::Silo,
    ] {
        for snapshot_on in [true, false] {
            for r in read_ratios {
                let snap = Experiment::new()
                    .protocol(kind)
                    .scale(*scale)
                    .checkpoint_interval_ms(scale.duration_ms.max(4) / 4)
                    .ycsb_with(move |y| y.read_ratio = r)
                    .tweak_cluster(move |c| c.primo.read_only_snapshot = snapshot_on)
                    .run();
                println!(
                    "{:<30} {:>8.2} {:>10.1} {:>10.2} {:>12.0} {:>10} {:>10} {:>13} {:>7.1}",
                    format!(
                        "{} ({})",
                        kind.label(),
                        if snapshot_on { "snapshot" } else { "baseline" }
                    ),
                    r,
                    snap.ktps(),
                    snap.p99_latency_ms,
                    snap.snapshot_read_tps,
                    snap.snapshot_reads,
                    snap.pruned_versions,
                    snap.wal_append_wait_us,
                    snap.replication_batch_len
                );
            }
        }
    }
    println!(
        "(snapshot = declared read-only txns resolve at the durable group-commit horizon,\n\
         zero locks / zero validation / zero conflict aborts; baseline = the same txns run\n\
         through the protocol. pruned = history versions GC'd at the horizon bound.)"
    );
}

/// Appendix A: the analytical conflict-rate model.
pub fn appendix_a() {
    header("Appendix A: analytical conflict rates (CR_2PC vs CR_Primo)");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>10}",
        "Rr", "Rd", "CR_2PC", "CR_Primo", "advantage"
    );
    for rr in [0.0, 0.2, 0.5, 0.8, 0.9] {
        for rd in [0.2, 0.8] {
            let p = ModelParams {
                read_ratio: rr,
                distributed_ratio: rd,
                conflict_prob: 1e-6,
                ..Default::default()
            };
            println!(
                "{:>8.1} {:>8.1} {:>14.5} {:>14.5} {:>10.2}x",
                rr,
                rd,
                analysis::conflict_rate_2pc(&p),
                analysis::conflict_rate_primo(&p),
                analysis::advantage_ratio(&p)
            );
        }
    }

    header("Appendix A': remote-read round trips (sequential vs batched fan-out)");
    println!(
        "{:>8} {:>12} {:>10} {:>12}",
        "r_op", "seq rt/txn", "batched", "advantage"
    );
    for r_op in [0.05, 0.1, 0.3, 0.5, 1.0] {
        let p = ModelParams {
            remote_op_ratio: r_op,
            ..Default::default()
        };
        println!(
            "{:>8.2} {:>12.2} {:>10.2} {:>12.2}x",
            r_op,
            analysis::read_round_trips_sequential(&p),
            analysis::read_round_trips_batched(&p),
            analysis::batching_advantage(&p)
        );
    }
    println!(
        "(crossover at one expected remote op per txn: below it the batched fan-out is\n\
         the same single round trip the sequential path pays; above it the advantage is\n\
         exactly m·r, the per-record round trips the footprint collapses into one)"
    );
}

/// Run every figure.
pub fn all(scale: &Scale) {
    fig4(scale);
    fig5(scale);
    fig6(scale);
    fig7(scale);
    fig8(scale);
    fig9(scale);
    fig10(scale);
    fig11(scale);
    fig12(scale);
    fig13(scale);
    fig14(scale);
    fig15(scale);
    fig16(scale);
    appendix_a();
}
