//! Regenerate the paper's figures on the simulated cluster.
//!
//! ```text
//! figures <fig4|fig5|...|fig15|appendixA|all> [--quick|--full]
//!         [--duration-ms N] [--partitions N] [--workers N]
//! ```

use primo_bench::figures;
use primo_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let which = args[0].to_lowercase();
    let mut scale = if args.iter().any(|a| a == "--full") {
        Scale::full()
    } else {
        Scale::quick()
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--duration-ms" => {
                scale.duration_ms = args[i + 1].parse().expect("--duration-ms N");
                i += 2;
            }
            "--partitions" => {
                scale.partitions = args[i + 1].parse().expect("--partitions N");
                i += 2;
            }
            "--workers" => {
                scale.workers_per_partition = args[i + 1].parse().expect("--workers N");
                i += 2;
            }
            _ => i += 1,
        }
    }

    println!(
        "# scale: {} partitions x {} workers, {} ms per data point, {} YCSB keys/partition",
        scale.partitions,
        scale.workers_per_partition,
        scale.duration_ms,
        scale.ycsb_keys_per_partition
    );

    match which.as_str() {
        "fig4" => figures::fig4(&scale),
        "fig5" => figures::fig5(&scale),
        "fig6" => figures::fig6(&scale),
        "fig7" => figures::fig7(&scale),
        "fig8" => figures::fig8(&scale),
        "fig9" => figures::fig9(&scale),
        "fig10" => figures::fig10(&scale),
        "fig11" => figures::fig11(&scale),
        "fig12" => figures::fig12(&scale),
        "fig13" => figures::fig13(&scale),
        "fig14" => figures::fig14(&scale),
        "fig15" => figures::fig15(&scale),
        "fig16" => figures::fig16(&scale),
        "appendixa" => figures::appendix_a(),
        "all" => figures::all(&scale),
        other => {
            eprintln!("unknown figure: {other}");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!("usage: figures <fig4..fig16|appendixA|all> [--quick|--full] [--duration-ms N] [--partitions N] [--workers N]");
}
