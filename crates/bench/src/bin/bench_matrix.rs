//! Emit `BENCH_PR7.json`: the standing per-PR performance trajectory matrix.
//!
//! Unlike the one-off `bench_pr6` snapshot, this emitter is the **fixed
//! matrix** ROADMAP.md asks for — the same cells re-run (and re-committed)
//! every PR so regressions show up as a diff at the repo root:
//!
//! * `contended_append` — the commit-critical-section cost of
//!   [`ReplicatedLog::append`] under contention: replication factor
//!   1 / 3 / 5 × 1 / 4 / 16 appender threads, reported as ns per append of
//!   wall-clock across all threads. This is the lock every committer holds
//!   while its write locks are still pinned, so it is the single most
//!   throughput-sensitive number in the system.
//! * `write_heavy` — YCSB at a 50 % read ratio (every transaction logs a
//!   write-set) for every protocol × group-commit scheme at replication
//!   factor 3: committed TPS, p99 latency, abort rate, and the append-
//!   pipeline health metrics (`wal_append_wait_us`, mean replication batch
//!   length).
//!
//! ```text
//! bench_matrix [--duration-ms N] [--partitions N] [--workers N] [--out PATH]
//! ```
//!
//! The committed `BENCH_PR7.json` at the repo root is generated with the
//! defaults; CI smoke-runs the emitter at a reduced duration and asserts the
//! schema plus non-zero TPS.

use primo_bench::Scale;
use primo_repro::wal::{LogPayload, LoggedWrite, ReplicatedLog};
use primo_repro::{
    Experiment, LoggingScheme, PartitionId, ProtocolKind, TableId, Value, WalConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const PROTOCOLS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::SyncPerTxn,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::Watermark,
];

const READ_RATIO: f64 = 0.5;
const REPLICATION_FACTOR: usize = 3;
const RF_POINTS: [usize; 3] = [1, 3, 5];
const THREAD_POINTS: [usize; 3] = [1, 4, 16];

fn scheme_key(s: LoggingScheme) -> &'static str {
    match s {
        LoggingScheme::SyncPerTxn => "sync",
        LoggingScheme::CocoEpoch => "coco",
        LoggingScheme::Clv => "clv",
        LoggingScheme::Watermark => "watermark",
    }
}

fn rf_log(rf: usize) -> ReplicatedLog {
    ReplicatedLog::new(
        PartitionId(0),
        WalConfig {
            replication_factor: rf,
            // Real-ish delays: local disk 100us, replicas 200us behind a
            // 500us hop. The appender never waits for any of these, so the
            // measured cost is purely the critical-section work.
            persist_delay_us: 100,
            replica_persist_delay_us: Some(200),
            ..WalConfig::default()
        },
        500,
        None,
    )
}

fn append_payload(seq: u64) -> LogPayload {
    LogPayload::TxnWrites {
        txn: primo_repro::TxnId::new(PartitionId(0), seq),
        ts: seq,
        writes: vec![LoggedWrite::put(TableId(0), seq, Value::from_u64(seq))],
    }
}

/// Wall-clock ns per append with `threads` appenders hammering one log.
/// Median of five passes. Payloads are pre-built outside the timed window,
/// so the cell measures the append critical path itself — not payload
/// allocation, which is identical across replication factors and thread
/// counts and would otherwise drown the signal.
fn contended_append_ns(rf: usize, threads: usize) -> f64 {
    let per_thread: u64 = 40_000 / threads as u64;
    let pass = || {
        let log = Arc::new(rf_log(rf));
        let batches: Vec<Vec<LogPayload>> = (0..threads as u64)
            .map(|t| {
                (0..per_thread)
                    .map(|i| append_payload(t * per_thread + i))
                    .collect()
            })
            .collect();
        let start = Instant::now();
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for payload in batch {
                        log.append(payload);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed().as_nanos() as f64 / (per_thread * threads as u64) as f64
    };
    let mut runs = [pass(), pass(), pass(), pass(), pass()];
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[2]
}

struct Cell {
    protocol: &'static str,
    scheme: &'static str,
    tps: f64,
    p99_ms: f64,
    abort_rate: f64,
    wal_append_wait_us: u64,
    replication_batch_len: f64,
}

fn run_cell(kind: ProtocolKind, scheme: LoggingScheme, scale: &Scale) -> Cell {
    let snap = Experiment::new()
        .protocol(kind)
        .logging(scheme)
        .scale(*scale)
        .replication_factor(REPLICATION_FACTOR)
        .checkpoint_interval_ms(scale.duration_ms.max(4) / 4)
        .ycsb_with(|y| y.read_ratio = READ_RATIO)
        .run();
    Cell {
        protocol: kind.label(),
        scheme: scheme_key(scheme),
        tps: snap.throughput_tps,
        p99_ms: snap.p99_latency_ms,
        abort_rate: snap.abort_rate,
        wal_append_wait_us: snap.wal_append_wait_us,
        replication_batch_len: snap.replication_batch_len,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut out_path = String::from("BENCH_PR7.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--duration-ms" => {
                scale.duration_ms = args[i + 1].parse().expect("--duration-ms N");
                i += 2;
            }
            "--partitions" => {
                scale.partitions = args[i + 1].parse().expect("--partitions N");
                i += 2;
            }
            "--workers" => {
                scale.workers_per_partition = args[i + 1].parse().expect("--workers N");
                i += 2;
            }
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: bench_matrix [--duration-ms N] [--partitions N] [--workers N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!("# contended append: RF {RF_POINTS:?} x threads {THREAD_POINTS:?}");
    let mut append_cells = Vec::new();
    for rf in RF_POINTS {
        for threads in THREAD_POINTS {
            let ns = contended_append_ns(rf, threads);
            eprintln!("rf={rf} threads={threads:<3} {ns:>10.1} ns/append");
            append_cells.push((rf, threads, ns));
        }
    }

    eprintln!(
        "# write-heavy YCSB (read ratio {READ_RATIO}, RF {REPLICATION_FACTOR}): \
         {} protocols x {} schemes, {} ms each",
        PROTOCOLS.len(),
        SCHEMES.len(),
        scale.duration_ms
    );
    let mut cells = Vec::new();
    for kind in PROTOCOLS {
        for scheme in SCHEMES {
            let cell = run_cell(kind, scheme, &scale);
            eprintln!(
                "{:<12} {:<10} tps={:>10.0} p99={:>7.2}ms wait={:>8}us batch={:>5.1}",
                cell.protocol,
                cell.scheme,
                cell.tps,
                cell.p99_ms,
                cell.wal_append_wait_us,
                cell.replication_batch_len
            );
            cells.push(cell);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(
        json,
        "  \"matrix\": {{\"read_ratio\": {READ_RATIO}, \
         \"replication_factor\": {REPLICATION_FACTOR}, \
         \"partitions\": {}, \"workers_per_partition\": {}, \"duration_ms\": {}}},",
        scale.partitions, scale.workers_per_partition, scale.duration_ms
    );
    json.push_str("  \"contended_append\": [\n");
    for (i, (rf, threads, ns)) in append_cells.iter().enumerate() {
        let comma = if i + 1 < append_cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"rf\": {rf}, \"threads\": {threads}, \"ns_per_append\": {ns:.1}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"write_heavy\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"scheme\": \"{}\", \"tps\": {:.1}, \
             \"p99_ms\": {:.3}, \"abort_rate\": {:.4}, \"wal_append_wait_us\": {}, \
             \"replication_batch_len\": {:.2}}}{comma}",
            c.protocol,
            c.scheme,
            c.tps,
            c.p99_ms,
            c.abort_rate,
            c.wal_append_wait_us,
            c.replication_batch_len
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_PR7.json");
    eprintln!("wrote {out_path}");
}
