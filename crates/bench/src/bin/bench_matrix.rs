//! Emit `BENCH_PR10.json`: the standing per-PR performance trajectory matrix.
//!
//! Unlike the one-off `bench_pr6` snapshot, this emitter is the **fixed
//! matrix** ROADMAP.md asks for — the same cells re-run (and re-committed)
//! every PR so regressions show up as a diff at the repo root:
//!
//! * `contended_append` — the commit-critical-section cost of
//!   [`ReplicatedLog::append`] under contention: replication factor
//!   1 / 3 / 5 × 1 / 4 / 16 appender threads, reported as ns per append of
//!   wall-clock across all threads. This is the lock every committer holds
//!   while its write locks are still pinned, so it is the single most
//!   throughput-sensitive number in the system. Measured with the flight
//!   recorder attached and enabled — the shipped default.
//! * `write_heavy` — YCSB at a 50 % read ratio (every transaction logs a
//!   write-set) for every protocol × group-commit scheme at replication
//!   factor 3: committed TPS, p99 latency, abort rate, and the append-
//!   pipeline health metrics (`wal_append_wait_us`, mean replication batch
//!   length).
//! * `commit_decision` — the atomic-commit ablation: the same write-heavy
//!   YCSB cell under classic 2PC vs Paxos Commit for a lock-based and an
//!   OCC-ish protocol, reporting committed TPS plus the prepare→decide
//!   latency of distributed commits (the round trip Paxos Commit removes).
//! * `remote_read` — the batched fan-out ablation (PR 10): a fully
//!   distributed 10-op YCSB cell (every transaction remote on every
//!   operation) with `batch_remote_reads` on vs off, swept over one-way
//!   network latencies of 5 / 50 / 200 µs, for Primo and 2PL(NW). Reports
//!   remote round trips per committed distributed transaction (the batched
//!   cell must stay ≥ 2× below the sequential one), the prefetch hit rate,
//!   and the distributed-only mean/p99 latency — the p99 gap widens with the
//!   one-way latency because the fan-out pays the slowest partition once
//!   instead of one round trip per record.
//! * `trace_overhead` — the cost of the always-on flight recorder: the two
//!   most recording-sensitive probes (contended append at RF 3 × 4 threads,
//!   and write-heavy YCSB under Primo/watermark) run with recording enabled
//!   vs disabled, reported as an overhead percentage. The recorder's
//!   always-on contract is that this stays **≤ 5 %**.
//!
//! ```text
//! bench_matrix [--duration-ms N] [--partitions N] [--workers N] [--out PATH]
//! bench_matrix --trace-overhead [--duration-ms N] ...   # gate mode
//! ```
//!
//! The committed `BENCH_PR10.json` at the repo root is generated with the
//! defaults; CI smoke-runs the emitter at a reduced duration and asserts the
//! schema plus non-zero TPS, and runs `--trace-overhead` in release, which
//! exits non-zero past the gate: the contract limit (5 %) on the
//! ns-resolution append micro, 3× that on the end-to-end YCSB probe, whose
//! run-to-run scheduling noise on a small CI box exceeds the limit itself —
//! the wide setting still catches any real recording bug (a per-event
//! allocation or lock lands well above 15 %).

use primo_bench::Scale;
use primo_repro::wal::{LogPayload, LoggedWrite, ReplicatedLog};
use primo_repro::{
    CommitMode, Experiment, FlightRecorder, LoggingScheme, PartitionId, ProtocolKind, TableId,
    Value, WalConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const PROTOCOLS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::SyncPerTxn,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::Watermark,
];

const READ_RATIO: f64 = 0.5;
const REPLICATION_FACTOR: usize = 3;
const RF_POINTS: [usize; 3] = [1, 3, 5];
const THREAD_POINTS: [usize; 3] = [1, 4, 16];

fn scheme_key(s: LoggingScheme) -> &'static str {
    match s {
        LoggingScheme::SyncPerTxn => "sync",
        LoggingScheme::CocoEpoch => "coco",
        LoggingScheme::Clv => "clv",
        LoggingScheme::Watermark => "watermark",
    }
}

fn rf_log(rf: usize) -> ReplicatedLog {
    ReplicatedLog::new(
        PartitionId(0),
        WalConfig {
            replication_factor: rf,
            // Real-ish delays: local disk 100us, replicas 200us behind a
            // 500us hop. The appender never waits for any of these, so the
            // measured cost is purely the critical-section work.
            persist_delay_us: 100,
            replica_persist_delay_us: Some(200),
            ..WalConfig::default()
        },
        500,
        None,
    )
}

fn append_payload(seq: u64) -> LogPayload {
    LogPayload::TxnWrites {
        txn: primo_repro::TxnId::new(PartitionId(0), seq),
        ts: seq,
        writes: vec![LoggedWrite::put(TableId(0), seq, Value::from_u64(seq))],
    }
}

/// Wall-clock ns per append with `threads` appenders hammering one log.
/// Minimum of five passes — for a fixed-work micro the least-disturbed run
/// is the cost, everything above it is scheduler interference (this is a
/// 1-core-CI-friendly estimator; a median still carries whatever noise hit
/// the middle pass). Payloads are pre-built outside the timed window,
/// so the cell measures the append critical path itself — not payload
/// allocation, which is identical across replication factors and thread
/// counts and would otherwise drown the signal. `recording` toggles the
/// attached flight recorder; the matrix cells run with it on (the shipped
/// default), the overhead gate compares both positions.
fn contended_append_ns(rf: usize, threads: usize, recording: bool) -> f64 {
    let per_thread: u64 = 200_000 / threads as u64;
    let pass = || {
        let log = Arc::new(rf_log(rf));
        log.set_recorder(Arc::new(FlightRecorder::new(recording, 4096)));
        let batches: Vec<Vec<LogPayload>> = (0..threads as u64)
            .map(|t| {
                (0..per_thread)
                    .map(|i| append_payload(t * per_thread + i))
                    .collect()
            })
            .collect();
        let start = Instant::now();
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for payload in batch {
                        log.append(payload);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed().as_nanos() as f64 / (per_thread * threads as u64) as f64
    };
    let mut runs = [pass(), pass(), pass(), pass(), pass()];
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[0]
}

struct Cell {
    protocol: &'static str,
    scheme: &'static str,
    tps: f64,
    p99_ms: f64,
    abort_rate: f64,
    wal_append_wait_us: u64,
    replication_batch_len: f64,
}

fn write_heavy_snapshot(
    kind: ProtocolKind,
    scheme: LoggingScheme,
    scale: &Scale,
    recording: bool,
) -> primo_repro::MetricsSnapshot {
    Experiment::new()
        .protocol(kind)
        .logging(scheme)
        .scale(*scale)
        .replication_factor(REPLICATION_FACTOR)
        .checkpoint_interval_ms(scale.duration_ms.max(4) / 4)
        .ycsb_with(|y| y.read_ratio = READ_RATIO)
        .tweak_cluster(move |c| c.trace.enabled = recording)
        .run()
}

struct OverheadProbe {
    on: f64,
    off: f64,
    /// `(off - on) / off` for TPS, `(on - off) / off` for ns — always
    /// "how much recording costs", clamped at zero (noise can make the
    /// recording-on run measure *faster*).
    overhead_pct: f64,
}

const OVERHEAD_LIMIT_PCT: f64 = 5.0;

/// Recording-on vs recording-off on the two most event-dense probes. Each
/// probe runs as back-to-back (on, off) **pairs**; the two halves of a pair
/// share the machine state of the moment (frequency, cache residency,
/// whatever else the box is doing), so their difference cancels drift that
/// would dominate a min-vs-min or median-vs-median comparison of the two
/// modes' separate distributions. Pairs alternate which mode runs first
/// (ABBA), so a systematic lead-position cost cannot masquerade as
/// recording overhead either. The reported overhead is the median of the
/// per-pair signed differences, clamped at zero (noise can make the
/// recording-on half measure *faster*).
fn trace_overhead(scale: &Scale) -> (OverheadProbe, OverheadProbe) {
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let pct = |cost: f64, base: f64| if base > 0.0 { cost / base * 100.0 } else { 0.0 };

    let mut pairs = Vec::new();
    for i in 0..8 {
        let (first_on, second_on) = (i % 2 == 0, i % 2 != 0);
        let first = contended_append_ns(3, 4, first_on);
        let second = contended_append_ns(3, 4, second_on);
        let (on, off) = if first_on {
            (first, second)
        } else {
            (second, first)
        };
        pairs.push((on, off));
    }
    let append = OverheadProbe {
        on: median(pairs.iter().map(|p| p.0).collect()),
        off: median(pairs.iter().map(|p| p.1).collect()),
        overhead_pct: median(pairs.iter().map(|&(on, off)| pct(on - off, off)).collect()).max(0.0),
    };

    // A deliberately small cluster (2×2): the probe needs the event
    // density of a full write-heavy txn lifecycle, not the matrix scale —
    // and fewer worker threads means far less scheduler lottery in the
    // on-vs-off comparison on small CI boxes.
    let probe = Scale {
        partitions: 2,
        workers_per_partition: 2,
        ..*scale
    };
    let run = |recording: bool| {
        write_heavy_snapshot(
            ProtocolKind::Primo,
            LoggingScheme::Watermark,
            &probe,
            recording,
        )
        .throughput_tps
    };
    let mut pairs = Vec::new();
    for i in 0..6 {
        let first_on = i % 2 == 0;
        let first = run(first_on);
        let second = run(!first_on);
        let (on, off) = if first_on {
            (first, second)
        } else {
            (second, first)
        };
        pairs.push((on, off));
    }
    let diffs: Vec<f64> = pairs.iter().map(|&(on, off)| pct(off - on, off)).collect();
    let ycsb = OverheadProbe {
        on: median(pairs.iter().map(|p| p.0).collect()),
        off: median(pairs.iter().map(|p| p.1).collect()),
        overhead_pct: (diffs.iter().sum::<f64>() / diffs.len() as f64).max(0.0),
    };
    (append, ycsb)
}

fn report_overhead(append: &OverheadProbe, ycsb: &OverheadProbe) {
    eprintln!(
        "contended append (rf=3, 4 threads): on={:.1} ns, off={:.1} ns, overhead={:.2}%",
        append.on, append.off, append.overhead_pct
    );
    eprintln!(
        "write-heavy YCSB (primo/watermark): on={:.0} tps, off={:.0} tps, overhead={:.2}%",
        ycsb.on, ycsb.off, ycsb.overhead_pct
    );
}

/// One atomic-commit ablation cell: the write-heavy YCSB workload with the
/// commit mode forced, keeping everything else at the matrix settings.
struct CommitCell {
    protocol: &'static str,
    mode: &'static str,
    tps: f64,
    commit_decisions: u64,
    decide_mean_us: f64,
    decide_p99_us: u64,
}

fn run_commit_cell(kind: ProtocolKind, mode: CommitMode, scale: &Scale) -> CommitCell {
    let snap = Experiment::new()
        .protocol(kind)
        .commit_mode(mode)
        .scale(*scale)
        .replication_factor(REPLICATION_FACTOR)
        .checkpoint_interval_ms(scale.duration_ms.max(4) / 4)
        .ycsb_with(|y| y.read_ratio = READ_RATIO)
        .run();
    CommitCell {
        protocol: kind.label(),
        mode: mode.label(),
        tps: snap.throughput_tps,
        commit_decisions: snap.commit_decisions,
        decide_mean_us: snap.commit_decide_mean_us,
        decide_p99_us: snap.commit_decide_p99_us,
    }
}

/// One remote-read ablation cell: fully distributed, fully remote YCSB with
/// the batched fan-out on or off, at a given one-way network latency.
struct RemoteReadCell {
    protocol: &'static str,
    one_way_us: u64,
    batched: bool,
    tps: f64,
    round_trips_per_dist_txn: f64,
    prefetch_hit_rate: f64,
    dist_mean_ms: f64,
    dist_p99_ms: f64,
}

const ONE_WAY_POINTS: [u64; 3] = [5, 50, 200];

fn run_remote_read_cell(
    kind: ProtocolKind,
    one_way_us: u64,
    batched: bool,
    scale: &Scale,
) -> RemoteReadCell {
    let snap = Experiment::new()
        .protocol(kind)
        .scale(*scale)
        .replication_factor(REPLICATION_FACTOR)
        .checkpoint_interval_ms(scale.duration_ms.max(4) / 4)
        .ycsb_with(|y| {
            y.read_ratio = READ_RATIO;
            // Every transaction distributed, every operation remote: the
            // worst case for per-record round trips, the best for batching.
            y.distributed_ratio = 1.0;
            y.remote_op_ratio = 1.0;
        })
        .tweak_cluster(move |c| {
            c.net.one_way_us = one_way_us;
            c.batch_remote_reads = batched;
        })
        .run();
    RemoteReadCell {
        protocol: kind.label(),
        one_way_us,
        batched,
        tps: snap.throughput_tps,
        round_trips_per_dist_txn: snap.remote_round_trips_per_dist_txn,
        prefetch_hit_rate: snap.prefetch_hit_rate,
        dist_mean_ms: snap.dist_txn_mean_ms,
        dist_p99_ms: snap.dist_txn_p99_ms,
    }
}

fn run_cell(kind: ProtocolKind, scheme: LoggingScheme, scale: &Scale) -> Cell {
    let snap = write_heavy_snapshot(kind, scheme, scale, true);
    Cell {
        protocol: kind.label(),
        scheme: scheme_key(scheme),
        tps: snap.throughput_tps,
        p99_ms: snap.p99_latency_ms,
        abort_rate: snap.abort_rate,
        wal_append_wait_us: snap.wal_append_wait_us,
        replication_batch_len: snap.replication_batch_len,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut out_path = String::from("BENCH_PR10.json");
    let mut gate_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-overhead" => {
                gate_only = true;
                i += 1;
            }
            "--duration-ms" => {
                scale.duration_ms = args[i + 1].parse().expect("--duration-ms N");
                i += 2;
            }
            "--partitions" => {
                scale.partitions = args[i + 1].parse().expect("--partitions N");
                i += 2;
            }
            "--workers" => {
                scale.workers_per_partition = args[i + 1].parse().expect("--workers N");
                i += 2;
            }
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: bench_matrix [--trace-overhead] [--duration-ms N] [--partitions N] \
                     [--workers N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if gate_only {
        eprintln!("# flight-recorder overhead gate (limit {OVERHEAD_LIMIT_PCT}%)");
        let (append, ycsb) = trace_overhead(&scale);
        report_overhead(&append, &ycsb);
        // The append micro has ns resolution and fixed work, so it gates at
        // the contract limit. The end-to-end YCSB probe's run-to-run noise
        // on a small CI box exceeds the limit itself (scheduler lottery
        // across 10+ threads on few cores), so it gates at 3x — wide enough
        // to never trip on noise, tight enough to catch a real recording
        // bug (a per-event allocation or lock shows up as 20%+).
        let ycsb_gate = 3.0 * OVERHEAD_LIMIT_PCT;
        if append.overhead_pct > OVERHEAD_LIMIT_PCT || ycsb.overhead_pct > ycsb_gate {
            eprintln!(
                "FAIL: recording overhead exceeds the gate \
                 (append {OVERHEAD_LIMIT_PCT}%, ycsb {ycsb_gate}%)"
            );
            std::process::exit(1);
        }
        eprintln!("OK: recording overhead within the gate");
        return;
    }

    eprintln!("# contended append: RF {RF_POINTS:?} x threads {THREAD_POINTS:?}");
    let mut append_cells = Vec::new();
    for rf in RF_POINTS {
        for threads in THREAD_POINTS {
            let ns = contended_append_ns(rf, threads, true);
            eprintln!("rf={rf} threads={threads:<3} {ns:>10.1} ns/append");
            append_cells.push((rf, threads, ns));
        }
    }

    eprintln!(
        "# write-heavy YCSB (read ratio {READ_RATIO}, RF {REPLICATION_FACTOR}): \
         {} protocols x {} schemes, {} ms each",
        PROTOCOLS.len(),
        SCHEMES.len(),
        scale.duration_ms
    );
    let mut cells = Vec::new();
    for kind in PROTOCOLS {
        for scheme in SCHEMES {
            let cell = run_cell(kind, scheme, &scale);
            eprintln!(
                "{:<12} {:<10} tps={:>10.0} p99={:>7.2}ms wait={:>8}us batch={:>5.1}",
                cell.protocol,
                cell.scheme,
                cell.tps,
                cell.p99_ms,
                cell.wal_append_wait_us,
                cell.replication_batch_len
            );
            cells.push(cell);
        }
    }

    eprintln!("# commit-decision latency: 2PC vs Paxos Commit (write-heavy YCSB, RF 3)");
    let mut commit_cells = Vec::new();
    for kind in [ProtocolKind::TwoPlNoWait, ProtocolKind::Primo] {
        for mode in [CommitMode::TwoPc, CommitMode::PaxosCommit] {
            let cell = run_commit_cell(kind, mode, &scale);
            eprintln!(
                "{:<12} {:<12} tps={:>10.0} decisions={:>8} decide-mean={:>8.1}us p99={:>6}us",
                cell.protocol,
                cell.mode,
                cell.tps,
                cell.commit_decisions,
                cell.decide_mean_us,
                cell.decide_p99_us
            );
            commit_cells.push(cell);
        }
    }

    eprintln!("# remote-read batching: one-way {ONE_WAY_POINTS:?} us, batched vs sequential");
    let mut remote_cells = Vec::new();
    for kind in [ProtocolKind::Primo, ProtocolKind::TwoPlNoWait] {
        for one_way_us in ONE_WAY_POINTS {
            for batched in [false, true] {
                let cell = run_remote_read_cell(kind, one_way_us, batched, &scale);
                eprintln!(
                    "{:<12} one-way={:>3}us {} tps={:>9.0} rt/dist-txn={:>6.2} hit={:>5.1}% \
                     dist-mean={:>7.2}ms dist-p99={:>7.2}ms",
                    cell.protocol,
                    cell.one_way_us,
                    if cell.batched {
                        "batched   "
                    } else {
                        "sequential"
                    },
                    cell.tps,
                    cell.round_trips_per_dist_txn,
                    cell.prefetch_hit_rate * 100.0,
                    cell.dist_mean_ms,
                    cell.dist_p99_ms
                );
                remote_cells.push(cell);
            }
        }
    }

    eprintln!("# flight-recorder overhead (recording on vs off)");
    let (append_oh, ycsb_oh) = trace_overhead(&scale);
    report_overhead(&append_oh, &ycsb_oh);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(
        json,
        "  \"matrix\": {{\"read_ratio\": {READ_RATIO}, \
         \"replication_factor\": {REPLICATION_FACTOR}, \
         \"partitions\": {}, \"workers_per_partition\": {}, \"duration_ms\": {}}},",
        scale.partitions, scale.workers_per_partition, scale.duration_ms
    );
    json.push_str("  \"contended_append\": [\n");
    for (i, (rf, threads, ns)) in append_cells.iter().enumerate() {
        let comma = if i + 1 < append_cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"rf\": {rf}, \"threads\": {threads}, \"ns_per_append\": {ns:.1}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"write_heavy\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"scheme\": \"{}\", \"tps\": {:.1}, \
             \"p99_ms\": {:.3}, \"abort_rate\": {:.4}, \"wal_append_wait_us\": {}, \
             \"replication_batch_len\": {:.2}}}{comma}",
            c.protocol,
            c.scheme,
            c.tps,
            c.p99_ms,
            c.abort_rate,
            c.wal_append_wait_us,
            c.replication_batch_len
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"commit_decision\": [\n");
    for (i, c) in commit_cells.iter().enumerate() {
        let comma = if i + 1 < commit_cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"mode\": \"{}\", \"tps\": {:.1}, \
             \"commit_decisions\": {}, \"decide_mean_us\": {:.1}, \"decide_p99_us\": {}}}{comma}",
            c.protocol, c.mode, c.tps, c.commit_decisions, c.decide_mean_us, c.decide_p99_us
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"remote_read\": [\n");
    for (i, c) in remote_cells.iter().enumerate() {
        let comma = if i + 1 < remote_cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"one_way_us\": {}, \"batched\": {}, \
             \"tps\": {:.1}, \"round_trips_per_dist_txn\": {:.2}, \
             \"prefetch_hit_rate\": {:.3}, \"dist_mean_ms\": {:.3}, \
             \"dist_p99_ms\": {:.3}}}{comma}",
            c.protocol,
            c.one_way_us,
            c.batched,
            c.tps,
            c.round_trips_per_dist_txn,
            c.prefetch_hit_rate,
            c.dist_mean_ms,
            c.dist_p99_ms
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"trace_overhead\": {{\"limit_pct\": {OVERHEAD_LIMIT_PCT}, \
         \"contended_append\": {{\"on_ns\": {:.1}, \"off_ns\": {:.1}, \"overhead_pct\": {:.2}}}, \
         \"write_heavy_ycsb\": {{\"on_tps\": {:.1}, \"off_tps\": {:.1}, \"overhead_pct\": {:.2}}}}}",
        append_oh.on,
        append_oh.off,
        append_oh.overhead_pct,
        ycsb_oh.on,
        ycsb_oh.off,
        ycsb_oh.overhead_pct
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_PR10.json");
    eprintln!("wrote {out_path}");
}
