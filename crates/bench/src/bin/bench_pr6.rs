//! Emit `BENCH_PR6.json`: the PR-6 performance baseline.
//!
//! Two sections from a fixed matrix:
//!
//! * `micro` — version-chain costs measured directly on a [`Record`]:
//!   `version_push_ns` (install a new committed version, pushing the
//!   previous one into the bounded history chain) and
//!   `snapshot_lookup_ns` (resolve a snapshot read against the chain at a
//!   mid-history horizon).
//! * `read_only_scaling` — every protocol × group-commit scheme at a 95 %
//!   YCSB read ratio, run twice: MVCC snapshot reads enabled (declared
//!   read-only transactions resolve lock-free at the durable group-commit
//!   horizon) and disabled (the validate-everything baseline). Each cell
//!   reports committed TPS, p99 latency and the snapshot-served share.
//!
//! ```text
//! bench_pr6 [--duration-ms N] [--partitions N] [--workers N] [--out PATH]
//! ```
//!
//! The committed `BENCH_PR6.json` at the repo root is generated with the
//! defaults; CI smoke-runs the emitter at a reduced duration.

use primo_bench::Scale;
use primo_repro::storage::Record;
use primo_repro::{Experiment, LoggingScheme, ProtocolKind, Value};
use std::fmt::Write as _;
use std::time::Instant;

const PROTOCOLS: [ProtocolKind; 9] = [
    ProtocolKind::TwoPlNoWait,
    ProtocolKind::TwoPlWaitDie,
    ProtocolKind::Silo,
    ProtocolKind::Sundial,
    ProtocolKind::Aria,
    ProtocolKind::Tapir,
    ProtocolKind::Primo,
    ProtocolKind::PrimoNoWm,
    ProtocolKind::PrimoNoWcfNoWm,
];

const SCHEMES: [LoggingScheme; 4] = [
    LoggingScheme::SyncPerTxn,
    LoggingScheme::CocoEpoch,
    LoggingScheme::Clv,
    LoggingScheme::Watermark,
];

const READ_RATIO: f64 = 0.95;
const MAX_VERSIONS: usize = 8;

fn scheme_key(s: LoggingScheme) -> &'static str {
    match s {
        LoggingScheme::SyncPerTxn => "sync",
        LoggingScheme::CocoEpoch => "coco",
        LoggingScheme::Clv => "clv",
        LoggingScheme::Watermark => "watermark",
    }
}

/// Median of three timing passes, nanoseconds per op.
fn ns_per_op(mut pass: impl FnMut() -> f64) -> f64 {
    let mut runs = [pass(), pass(), pass()];
    runs.sort_by(|a, b| a.total_cmp(b));
    runs[1]
}

fn micro_version_push() -> f64 {
    const OPS: u64 = 200_000;
    ns_per_op(|| {
        let rec = Record::new(Value::from_u64(0));
        rec.set_max_versions(MAX_VERSIONS);
        let start = Instant::now();
        for i in 0..OPS {
            rec.install_next_version_at(Value::from_u64(i), i + 1);
        }
        start.elapsed().as_nanos() as f64 / OPS as f64
    })
}

fn micro_snapshot_lookup() -> f64 {
    const OPS: u64 = 1_000_000;
    ns_per_op(|| {
        let rec = Record::new(Value::from_u64(0));
        rec.set_max_versions(MAX_VERSIONS);
        for i in 0..MAX_VERSIONS as u64 {
            rec.install_next_version_at(Value::from_u64(i), (i + 1) * 10);
        }
        // Horizon in the middle of the retained chain: the lookup walks
        // half the history on every call.
        let h = (MAX_VERSIONS as u64 / 2) * 10;
        let start = Instant::now();
        for _ in 0..OPS {
            std::hint::black_box(rec.read_at(std::hint::black_box(h)));
        }
        start.elapsed().as_nanos() as f64 / OPS as f64
    })
}

struct Cell {
    protocol: &'static str,
    scheme: &'static str,
    snapshot: bool,
    tps: f64,
    p99_ms: f64,
    snapshot_read_tps: f64,
    snapshot_reads: u64,
    abort_rate: f64,
}

fn run_cell(kind: ProtocolKind, scheme: LoggingScheme, snapshot_on: bool, scale: &Scale) -> Cell {
    let snap = Experiment::new()
        .protocol(kind)
        .logging(scheme)
        .scale(*scale)
        .checkpoint_interval_ms(scale.duration_ms.max(4) / 4)
        .ycsb_with(|y| y.read_ratio = READ_RATIO)
        .tweak_cluster(move |c| {
            c.primo.read_only_snapshot = snapshot_on;
            c.primo.max_versions = MAX_VERSIONS;
        })
        .run();
    Cell {
        protocol: kind.label(),
        scheme: scheme_key(scheme),
        snapshot: snapshot_on,
        tps: snap.throughput_tps,
        p99_ms: snap.p99_latency_ms,
        snapshot_read_tps: snap.snapshot_read_tps,
        snapshot_reads: snap.snapshot_reads,
        abort_rate: snap.abort_rate,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut out_path = String::from("BENCH_PR6.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--duration-ms" => {
                scale.duration_ms = args[i + 1].parse().expect("--duration-ms N");
                i += 2;
            }
            "--partitions" => {
                scale.partitions = args[i + 1].parse().expect("--partitions N");
                i += 2;
            }
            "--workers" => {
                scale.workers_per_partition = args[i + 1].parse().expect("--workers N");
                i += 2;
            }
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: bench_pr6 [--duration-ms N] [--partitions N] [--workers N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("# micro benches (record-level, no cluster)");
    let version_push_ns = micro_version_push();
    let snapshot_lookup_ns = micro_snapshot_lookup();
    eprintln!("version_push_ns    = {version_push_ns:.1}");
    eprintln!("snapshot_lookup_ns = {snapshot_lookup_ns:.1}");

    eprintln!(
        "# read-only scaling: {} protocols x {} schemes x 2 modes, {} ms each",
        PROTOCOLS.len(),
        SCHEMES.len(),
        scale.duration_ms
    );
    let mut cells = Vec::new();
    for kind in PROTOCOLS {
        for scheme in SCHEMES {
            for snapshot_on in [true, false] {
                let cell = run_cell(kind, scheme, snapshot_on, &scale);
                eprintln!(
                    "{:<12} {:<10} snapshot={:<5} tps={:>10.0} p99={:>7.2}ms snap_tps={:>9.0}",
                    cell.protocol,
                    cell.scheme,
                    cell.snapshot,
                    cell.tps,
                    cell.p99_ms,
                    cell.snapshot_read_tps
                );
                cells.push(cell);
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(
        json,
        "  \"matrix\": {{\"read_ratio\": {READ_RATIO}, \"max_versions\": {MAX_VERSIONS}, \
         \"partitions\": {}, \"workers_per_partition\": {}, \"duration_ms\": {}}},",
        scale.partitions, scale.workers_per_partition, scale.duration_ms
    );
    let _ = writeln!(
        json,
        "  \"micro\": {{\"version_push_ns\": {version_push_ns:.1}, \
         \"snapshot_lookup_ns\": {snapshot_lookup_ns:.1}}},"
    );
    json.push_str("  \"read_only_scaling\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"scheme\": \"{}\", \"snapshot\": {}, \
             \"tps\": {:.1}, \"p99_ms\": {:.3}, \"snapshot_read_tps\": {:.1}, \
             \"snapshot_reads\": {}, \"abort_rate\": {:.4}}}{comma}",
            c.protocol,
            c.scheme,
            c.snapshot,
            c.tps,
            c.p99_ms,
            c.snapshot_read_tps,
            c.snapshot_reads,
            c.abort_rate
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_PR6.json");
    eprintln!("wrote {out_path}");
}
