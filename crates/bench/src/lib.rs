//! Experiment harness: regenerates every figure of the paper's evaluation
//! (§6) on the simulated cluster, written entirely against the
//! [`primo_repro`] facade ([`primo_repro::Experiment`],
//! [`primo_repro::ProtocolRegistry`]).
//!
//! Use the `figures` binary:
//!
//! ```text
//! cargo run -p primo-bench --release --bin figures -- fig4
//! cargo run -p primo-bench --release --bin figures -- all --quick
//! ```
//!
//! Each harness prints the same series the paper plots (throughput in kilo
//! transactions per second, abort rates, latency breakdowns, ...), so the
//! *shape* of every figure can be compared directly; see `EXPERIMENTS.md` for
//! the recorded comparison.

pub mod figures;

pub use primo_repro::Scale;
