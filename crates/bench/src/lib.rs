//! Experiment harness: regenerates every figure of the paper's evaluation
//! (§6) on the simulated cluster.
//!
//! Use the `figures` binary:
//!
//! ```text
//! cargo run -p primo-bench --release --bin figures -- fig4
//! cargo run -p primo-bench --release --bin figures -- all --quick
//! ```
//!
//! Each harness prints the same series the paper plots (throughput in kilo
//! transactions per second, abort rates, latency breakdowns, ...), so the
//! *shape* of every figure can be compared directly; see `EXPERIMENTS.md` for
//! the recorded comparison.

pub mod figures;
pub mod setup;

pub use setup::{build_protocol, cluster_config_for, Scale};
