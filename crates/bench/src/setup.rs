//! Shared experiment plumbing: protocol construction, cluster configuration
//! per protocol (which group-commit scheme it pairs with, §6.1.3) and the
//! run-scale knobs (quick vs. full).

use primo_baselines::{AriaProtocol, SiloProtocol, SundialProtocol, TapirProtocol, TwoPlProtocol};
use primo_common::config::{ClusterConfig, LoggingScheme, ProtocolKind};
use primo_common::MetricsSnapshot;
use primo_core::PrimoProtocol;
use primo_runtime::experiment::{run_experiment, ExperimentOptions};
use primo_runtime::protocol::Protocol;
use primo_runtime::txn::Workload;
use primo_workloads::{TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload};
use std::sync::Arc;
use std::time::Duration;

/// Run-scale: how long each data point runs and how big the data set is.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub partitions: usize,
    pub workers_per_partition: usize,
    pub ycsb_keys_per_partition: u64,
    pub duration_ms: u64,
    pub warmup_ms: u64,
}

impl Scale {
    /// Quick mode: every figure in a few minutes (used by CI and the recorded
    /// outputs in EXPERIMENTS.md).
    pub fn quick() -> Self {
        Scale {
            partitions: 4,
            workers_per_partition: 4,
            ycsb_keys_per_partition: 50_000,
            duration_ms: 400,
            warmup_ms: 100,
        }
    }

    /// Full mode: longer runs and larger tables for smoother numbers.
    pub fn full() -> Self {
        Scale {
            partitions: 4,
            workers_per_partition: 8,
            ycsb_keys_per_partition: 200_000,
            duration_ms: 2_000,
            warmup_ms: 300,
        }
    }

    pub fn with_partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    pub fn options(&self) -> ExperimentOptions {
        ExperimentOptions {
            warmup: Duration::from_millis(self.warmup_ms),
            duration: Duration::from_millis(self.duration_ms),
            ..Default::default()
        }
    }
}

/// Build a protocol instance for any [`ProtocolKind`], including the Primo
/// variants.
pub fn build_protocol(kind: ProtocolKind) -> Arc<dyn Protocol> {
    match kind {
        ProtocolKind::TwoPlNoWait => Arc::new(TwoPlProtocol::no_wait()),
        ProtocolKind::TwoPlWaitDie => Arc::new(TwoPlProtocol::wait_die()),
        ProtocolKind::Silo => Arc::new(SiloProtocol::new()),
        ProtocolKind::Sundial => Arc::new(SundialProtocol::new()),
        ProtocolKind::Aria => Arc::new(AriaProtocol::new(Default::default())),
        ProtocolKind::Tapir => Arc::new(TapirProtocol::new()),
        ProtocolKind::Primo => Arc::new(PrimoProtocol::full()),
        ProtocolKind::PrimoNoWm => Arc::new(PrimoProtocol::full().labeled("Primo w/o WM")),
        ProtocolKind::PrimoNoWcfNoWm => {
            Arc::new(PrimoProtocol::without_wcf().labeled("Primo w/o WM & WCF"))
        }
    }
}

/// Which group-commit scheme a protocol is paired with, following §6.1.3:
/// every baseline gets COCO's distributed group commit; full Primo gets the
/// watermark scheme; the ablations get COCO.
pub fn logging_scheme_for(kind: ProtocolKind) -> LoggingScheme {
    match kind {
        ProtocolKind::Primo => LoggingScheme::Watermark,
        ProtocolKind::Aria | ProtocolKind::Tapir => LoggingScheme::Watermark, // unused: they manage durability
        _ => LoggingScheme::CocoEpoch,
    }
}

/// Cluster configuration for one protocol at one scale.
pub fn cluster_config_for(kind: ProtocolKind, scale: &Scale) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.num_partitions = scale.partitions;
    cfg.workers_per_partition = scale.workers_per_partition;
    cfg.wal.scheme = logging_scheme_for(kind);
    // Paper §6.2: the epoch size of COCO and the watermark interval of WM are
    // unified (20 ms) so all protocols see ~10 ms average commit latency.
    cfg.wal.interval_ms = 20;
    cfg
}

/// Default YCSB config for a scale.
pub fn ycsb_config(scale: &Scale) -> YcsbConfig {
    YcsbConfig::paper_default(scale.partitions, scale.ycsb_keys_per_partition)
}

/// Default TPC-C config for a scale.
pub fn tpcc_config(scale: &Scale) -> TpccConfig {
    TpccConfig::paper_default(scale.partitions)
}

/// Run one protocol on one workload and return the metrics.
pub fn run(
    kind: ProtocolKind,
    workload: Arc<dyn Workload>,
    scale: &Scale,
    options: Option<ExperimentOptions>,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> MetricsSnapshot {
    let mut cfg = cluster_config_for(kind, scale);
    tweak(&mut cfg);
    let protocol = build_protocol(kind);
    let options = options.unwrap_or_else(|| scale.options());
    run_experiment(cfg, protocol, workload, &options)
}

/// Run a protocol on YCSB with a config tweak.
pub fn run_ycsb(
    kind: ProtocolKind,
    scale: &Scale,
    options: Option<ExperimentOptions>,
    ycsb_tweak: impl FnOnce(&mut YcsbConfig),
    cluster_tweak: impl FnOnce(&mut ClusterConfig),
) -> MetricsSnapshot {
    let mut ycsb = ycsb_config(scale);
    ycsb_tweak(&mut ycsb);
    run(
        kind,
        Arc::new(YcsbWorkload::new(ycsb)),
        scale,
        options,
        cluster_tweak,
    )
}

/// Run a protocol on TPC-C with a config tweak.
pub fn run_tpcc(
    kind: ProtocolKind,
    scale: &Scale,
    options: Option<ExperimentOptions>,
    tpcc_tweak: impl FnOnce(&mut TpccConfig),
    cluster_tweak: impl FnOnce(&mut ClusterConfig),
) -> MetricsSnapshot {
    let mut tpcc = tpcc_config(scale);
    tpcc_tweak(&mut tpcc);
    run(
        kind,
        Arc::new(TpccWorkload::new(tpcc)),
        scale,
        options,
        cluster_tweak,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_kind_builds() {
        for kind in [
            ProtocolKind::TwoPlNoWait,
            ProtocolKind::TwoPlWaitDie,
            ProtocolKind::Silo,
            ProtocolKind::Sundial,
            ProtocolKind::Aria,
            ProtocolKind::Tapir,
            ProtocolKind::Primo,
            ProtocolKind::PrimoNoWm,
            ProtocolKind::PrimoNoWcfNoWm,
        ] {
            let p = build_protocol(kind);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn primo_uses_watermark_baselines_use_coco() {
        assert_eq!(
            logging_scheme_for(ProtocolKind::Primo),
            LoggingScheme::Watermark
        );
        assert_eq!(
            logging_scheme_for(ProtocolKind::Sundial),
            LoggingScheme::CocoEpoch
        );
        let cfg = cluster_config_for(ProtocolKind::Primo, &Scale::quick());
        assert_eq!(cfg.wal.interval_ms, 20);
        assert_eq!(cfg.num_partitions, 4);
    }

    #[test]
    fn quick_scale_end_to_end_smoke() {
        // A tiny end-to-end run: Primo on a shrunken YCSB must commit
        // transactions.
        let scale = Scale {
            partitions: 2,
            workers_per_partition: 2,
            ycsb_keys_per_partition: 2_000,
            duration_ms: 150,
            warmup_ms: 30,
        };
        let snap = run_ycsb(ProtocolKind::Primo, &scale, None, |_| {}, |c| {
            c.wal.interval_ms = 5;
        });
        assert!(snap.committed > 0);
    }
}
